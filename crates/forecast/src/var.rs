//! Vector Autoregression — the paper's winning forecaster (eq. 5):
//!
//! `ĉ^k_{i+1} = b^k + Σ_{l≤d} Σ_{j=i−R+1..i} w^l_j · ĉ^l_j`
//!
//! trained by OLS over the experienced-operator dataset (eq. 9). The
//! original prototype used `statsmodels` 0.12; here the design matrix is
//! built from [`foreco_teleop::Dataset::windows`] and solved with
//! `foreco-linalg`'s ridge-stabilised normal equations.

use crate::Forecaster;
use foreco_linalg::{ols_ridge, Matrix, OlsError};
use foreco_teleop::Dataset;
use serde::{Deserialize, Serialize};

/// Whether the regression runs on command levels or first differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarMode {
    /// Regress levels — the literal eq. 5. One-step accurate, but the
    /// recursion's dominant eigenvalues sit near/above 1 on smooth teleop
    /// data, so *multi-step* forecasts drift exponentially.
    Levels,
    /// Regress first differences (joint velocities) and integrate — the
    /// standard econometric treatment of integrated series. During dwells
    /// the predicted velocity is ≈ 0 (the forecast holds the pose);
    /// during motion the velocity continues; recursive drift is linear
    /// instead of exponential. This is the mode FoReCo deploys
    /// (DESIGN.md §5).
    Differences,
}

/// A trained VAR(R) model for `d`-dimensional commands.
///
/// # Example
///
/// ```
/// use foreco_forecast::{Forecaster, Var};
/// use foreco_teleop::{Dataset, Skill};
///
/// let train = Dataset::record(Skill::Experienced, 1, 0.02, 3);
/// let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
/// let pred = var.forecast(&train.commands[..var.history_len()]);
/// assert_eq!(pred.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Var {
    r: usize,
    dims: usize,
    mode: VarMode,
    /// Coefficients, `(1 + d·R) x d`: row 0 is the bias `b`, then one row
    /// per (lag, joint) regressor, oldest lag first.
    beta: Matrix,
    /// Differences mode only: the largest |Δ| seen in training. Input
    /// windows are clamped to it at forecast time, so an out-of-
    /// distribution jump (e.g. the correction step after a loss burst)
    /// cannot masquerade as a huge velocity and be extrapolated.
    diff_clamp: Option<f64>,
}

impl Var {
    /// Fits a VAR(R) by ridge-stabilised OLS on every `(R history → next)`
    /// window of `train`, in the requested [`VarMode`].
    ///
    /// `ridge` guards against collinear regressors (dwell phases make
    /// joints constant); `1e-6` is a good default at radian scale.
    ///
    /// # Errors
    /// Returns the underlying [`OlsError`] when the dataset has fewer
    /// windows than regressors or contains non-finite values.
    ///
    /// # Panics
    /// Panics if `r == 0` or the dataset is empty.
    pub fn fit_mode(
        train: &Dataset,
        r: usize,
        ridge: f64,
        mode: VarMode,
    ) -> Result<Self, OlsError> {
        assert!(r >= 1, "VAR: R must be ≥ 1");
        assert!(!train.is_empty(), "VAR: empty training dataset");
        let d = train.dof();
        let series: Vec<Vec<f64>> = match mode {
            VarMode::Levels => train.commands.clone(),
            VarMode::Differences => train
                .commands
                .windows(2)
                .map(|w| w[1].iter().zip(&w[0]).map(|(a, b)| a - b).collect())
                .collect(),
        };
        let p = 1 + d * r;
        let n = series.len().saturating_sub(r);
        if n < p {
            return Err(OlsError::Underdetermined { rows: n, cols: p });
        }
        let mut x = Matrix::zeros(n, p);
        let mut y = Matrix::zeros(n, d);
        for row in 0..n {
            let xr = x.row_mut(row);
            xr[0] = 1.0;
            for lag in 0..r {
                for (k, &v) in series[row + lag].iter().enumerate() {
                    xr[1 + lag * d + k] = v;
                }
            }
            y.row_mut(row).copy_from_slice(&series[row + r]);
        }
        let beta = ols_ridge(&x, &y, ridge)?;
        let diff_clamp = match mode {
            VarMode::Levels => None,
            VarMode::Differences => Some(
                series
                    .iter()
                    .flat_map(|v| v.iter())
                    .fold(0.0f64, |m, &x| m.max(x.abs())),
            ),
        };
        Ok(Self {
            r,
            dims: d,
            mode,
            beta,
            diff_clamp,
        })
    }

    /// Levels-mode fit (the paper's literal eq. 5).
    pub fn fit(train: &Dataset, r: usize, ridge: f64) -> Result<Self, OlsError> {
        Self::fit_mode(train, r, ridge, VarMode::Levels)
    }

    /// Differences-mode fit — what the FoReCo recovery engine deploys.
    pub fn fit_differenced(train: &Dataset, r: usize, ridge: f64) -> Result<Self, OlsError> {
        Self::fit_mode(train, r, ridge, VarMode::Differences)
    }

    /// Builds a levels-mode VAR directly from coefficients (tests/serde).
    ///
    /// # Panics
    /// Panics if the coefficient shape is not `(1 + dims·r) x dims`.
    pub fn from_coefficients(r: usize, dims: usize, beta: Matrix) -> Self {
        assert_eq!(
            beta.shape(),
            (1 + dims * r, dims),
            "VAR: bad coefficient shape"
        );
        Self {
            r,
            dims,
            mode: VarMode::Levels,
            beta,
            diff_clamp: None,
        }
    }

    /// The regression mode.
    pub fn mode(&self) -> VarMode {
        self.mode
    }

    /// The coefficient matrix (`(1 + d·R) x d`; row 0 = bias).
    pub fn coefficients(&self) -> &Matrix {
        &self.beta
    }

    /// Number of trainable weights `|w|` (for the Table-II style counts).
    pub fn num_params(&self) -> usize {
        self.beta.rows() * self.beta.cols()
    }

    /// Spectral radius of the VAR's companion matrix, estimated by power
    /// iteration — the stability diagnostic behind `VarMode`:
    ///
    /// - `ρ < 1`: contractive recursion, multi-step forecasts converge;
    /// - `ρ ≈ 1`: marginal; forecasts drift linearly;
    /// - `ρ > 1`: multi-step forecasts diverge exponentially — the
    ///   levels-mode failure on smooth teleop data (DESIGN.md §5).
    ///
    /// Power iteration converges cleanly only with a real dominant
    /// eigenvalue; a dominant complex pair makes the per-step estimate
    /// oscillate, which the tail-averaging below damps. Treat the result
    /// as a diagnostic, not an exact eigenvalue.
    #[allow(clippy::needless_range_loop)] // k walks out[] against beta columns
    pub fn companion_spectral_radius(&self) -> f64 {
        let d = self.dims;
        let r = self.r;
        let n = d * r;
        // Companion state: blocks newest-first; one application replaces
        // the newest block with Σ_lag A_lag·(lag block) — bias ignored,
        // it does not move eigenvalues — and shifts the rest down.
        let apply = |v: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; n];
            for k in 0..d {
                let mut acc = 0.0;
                for lag in 0..r {
                    // beta lag 0 = oldest ⇒ newest-first block r−1−lag.
                    let block = r - 1 - lag;
                    for l in 0..d {
                        acc += v[block * d + l] * self.beta[(1 + lag * d + l, k)];
                    }
                }
                out[k] = acc;
            }
            for block in 1..r {
                for l in 0..d {
                    out[block * d + l] = v[(block - 1) * d + l];
                }
            }
            out
        };
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut estimates = Vec::with_capacity(200);
        for _ in 0..200 {
            let prev_norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            let w = apply(&v);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return 0.0;
            }
            estimates.push(norm / prev_norm.max(1e-300));
            v = w.iter().map(|x| x / norm).collect();
        }
        let tail = &estimates[estimates.len() - 50..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

impl Var {
    /// Applies the linear map to an R-window of the regression series.
    fn regress(&self, window: &[Vec<f64>]) -> Vec<f64> {
        let mut out = vec![0.0; self.dims];
        self.regress_rows(window.iter().map(Vec::as_slice), &mut out);
        out
    }

    /// In-place form of the eq.-5 linear map over an iterator of lag
    /// rows (oldest first): `out = b + Σ w·row`, accumulated in exactly
    /// the historical operation order (bias init, then lag-major /
    /// joint-minor terms, zero regressors skipped) so callers stay
    /// bit-identical to the allocating path. Shared with VARMA's
    /// stage-1 residual rebuild.
    #[allow(clippy::needless_range_loop)] // k walks out[] against beta columns
    pub(crate) fn regress_rows<'a>(&self, rows: impl Iterator<Item = &'a [f64]>, out: &mut [f64]) {
        let d = self.dims;
        assert_eq!(out.len(), d, "VAR: output dimension mismatch");
        for k in 0..d {
            out[k] = self.beta[(0, k)];
        }
        for (lag, cmd) in rows.enumerate() {
            assert_eq!(cmd.len(), d, "VAR: dimension mismatch");
            for (l, &v) in cmd.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let row = 1 + lag * d + l;
                for k in 0..d {
                    out[k] += v * self.beta[(row, k)];
                }
            }
        }
    }
}

impl Forecaster for Var {
    #[allow(clippy::needless_range_loop)]
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        let need = self.history_len();
        assert!(
            history.len() >= need,
            "VAR: need {} commands, got {}",
            need,
            history.len()
        );
        match self.mode {
            VarMode::Levels => {
                let window = &history[history.len() - self.r..];
                self.regress(window)
            }
            VarMode::Differences => {
                // Differences of the last R+1 commands, predict the next
                // difference, integrate onto the last command.
                let tail = &history[history.len() - (self.r + 1)..];
                let clamp = self.diff_clamp.unwrap_or(f64::INFINITY);
                let diffs: Vec<Vec<f64>> = tail
                    .windows(2)
                    .map(|w| {
                        w[1].iter()
                            .zip(&w[0])
                            .map(|(a, b)| (a - b).clamp(-clamp, clamp))
                            .collect()
                    })
                    .collect();
                let delta = self.regress(&diffs);
                tail.last()
                    .expect("nonempty window")
                    .iter()
                    .zip(&delta)
                    .map(|(c, dv)| c + dv)
                    .collect()
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // k walks out[] against beta columns
    fn forecast_into(
        &self,
        history: &crate::HistoryView<'_>,
        scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) {
        let need = self.history_len();
        assert!(
            history.len() >= need,
            "VAR: need {} commands, got {}",
            need,
            history.len()
        );
        match self.mode {
            VarMode::Levels => {
                self.regress_rows(history.suffix(self.r).iter(), out);
            }
            VarMode::Differences => {
                // Differences of the last R+1 commands, predict the next
                // difference, integrate onto the last command — each diff
                // row built in the caller-owned scratch instead of a
                // collected Vec<Vec<f64>>, same arithmetic order.
                let d = self.dims;
                assert_eq!(out.len(), d, "VAR: output dimension mismatch");
                let tail = history.suffix(self.r + 1);
                assert_eq!(tail.dims(), d, "VAR: dimension mismatch");
                let clamp = self.diff_clamp.unwrap_or(f64::INFINITY);
                let diff = scratch.buf(d);
                for k in 0..d {
                    out[k] = self.beta[(0, k)];
                }
                for lag in 0..self.r {
                    let (prev, next) = (tail.row(lag), tail.row(lag + 1));
                    for l in 0..d {
                        diff[l] = (next[l] - prev[l]).clamp(-clamp, clamp);
                    }
                    for (l, &v) in diff.iter().enumerate() {
                        if v == 0.0 {
                            continue;
                        }
                        let row = 1 + lag * d + l;
                        for k in 0..d {
                            out[k] += v * self.beta[(row, k)];
                        }
                    }
                }
                let last = tail.row(self.r);
                // Keeps the legacy `c + dv` operand order: `*v += c`
                // would swap it, which flips NaN payload selection.
                #[allow(clippy::assign_op_pattern)]
                for (v, c) in out.iter_mut().zip(last) {
                    *v = c + *v;
                }
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // k walks out[] against beta columns
    fn forecast_batch(
        &self,
        members: usize,
        windows: &[f64],
        scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let d = self.dims;
        let stride = self.history_len() * d;
        assert_eq!(windows.len(), members * stride, "VAR: batch window shape");
        assert_eq!(out.len(), members * d, "VAR: batch output shape");
        match self.mode {
            VarMode::Levels => {
                for (w, o) in windows.chunks_exact(stride).zip(out.chunks_exact_mut(d)) {
                    self.regress_rows(w.chunks_exact(d), o);
                }
            }
            VarMode::Differences => {
                let clamp = self.diff_clamp.unwrap_or(f64::INFINITY);
                let diff = scratch.buf(d);
                for (w, o) in windows.chunks_exact(stride).zip(out.chunks_exact_mut(d)) {
                    // The scalar Differences kernel over this member's
                    // gathered window; `row(i)` is a flat-slice index.
                    let row = |i: usize| &w[i * d..(i + 1) * d];
                    for k in 0..d {
                        o[k] = self.beta[(0, k)];
                    }
                    for lag in 0..self.r {
                        let (prev, next) = (row(lag), row(lag + 1));
                        for l in 0..d {
                            diff[l] = (next[l] - prev[l]).clamp(-clamp, clamp);
                        }
                        for (l, &v) in diff.iter().enumerate() {
                            if v == 0.0 {
                                continue;
                            }
                            let beta_row = 1 + lag * d + l;
                            for k in 0..d {
                                o[k] += v * self.beta[(beta_row, k)];
                            }
                        }
                    }
                    let last = row(self.r);
                    // Keeps the legacy `c + dv` operand order (NaN
                    // payload selection), as in `forecast_into`.
                    #[allow(clippy::assign_op_pattern)]
                    for (v, c) in o.iter_mut().zip(last) {
                        *v = c + *v;
                    }
                }
            }
        }
        true
    }

    #[allow(clippy::needless_range_loop)] // lag/l/k walk beta rows against slot lanes
    fn forecast_batch_slots(
        &self,
        members: usize,
        slots: &[f64],
        scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let d = self.dims;
        let rows = self.history_len();
        assert_eq!(slots.len(), members * rows * d, "VAR: slot batch shape");
        assert_eq!(out.len(), members * d, "VAR: batch output shape");
        // Slot-major accumulator (`acc[k * members + m]`) plus, in
        // Differences mode, one slot-major diff row per lag — both in
        // scratch, sized to the lane's width high-water mark.
        let (acc, diff) = scratch.pair(d * members, d * members);
        for k in 0..d {
            acc[k * members..(k + 1) * members].fill(self.beta[(0, k)]);
        }
        let clamp = self.diff_clamp.unwrap_or(f64::INFINITY);
        for lag in 0..self.r {
            for l in 0..d {
                // The lag's regressor values, one per member: the raw
                // slot in Levels mode, the clamped first difference of
                // two adjacent slots in Differences mode. Per member
                // this is the exact scalar diff arithmetic.
                let reg: &[f64] = match self.mode {
                    VarMode::Levels => &slots[(lag * d + l) * members..(lag * d + l + 1) * members],
                    VarMode::Differences => {
                        let prev = &slots[(lag * d + l) * members..(lag * d + l + 1) * members];
                        let next = &slots
                            [((lag + 1) * d + l) * members..((lag + 1) * d + l + 1) * members];
                        let dst = &mut diff[l * members..(l + 1) * members];
                        for m in 0..members {
                            dst[m] = (next[m] - prev[m]).clamp(-clamp, clamp);
                        }
                        dst
                    }
                };
                let row = 1 + lag * d + l;
                for k in 0..d {
                    let b = self.beta[(row, k)];
                    let acc_k = &mut acc[k * members..(k + 1) * members];
                    for m in 0..members {
                        let v = reg[m];
                        // Select form of the scalar kernel's `v == 0.0`
                        // skip: the accumulator only moves when the
                        // regressor is non-zero, bit-identically, and
                        // the branchless shape keeps the cross-member
                        // loop vectorizable.
                        let fused = acc_k[m] + v * b;
                        acc_k[m] = if v != 0.0 { fused } else { acc_k[m] };
                    }
                }
            }
        }
        match self.mode {
            VarMode::Levels => {
                for k in 0..d {
                    let acc_k = &acc[k * members..(k + 1) * members];
                    for m in 0..members {
                        out[m * d + k] = acc_k[m];
                    }
                }
            }
            VarMode::Differences => {
                // Integrate onto the newest slot row, keeping the legacy
                // `c + dv` operand order (NaN payload selection), as in
                // `forecast_into`.
                for k in 0..d {
                    let last = &slots[(self.r * d + k) * members..(self.r * d + k + 1) * members];
                    let acc_k = &acc[k * members..(k + 1) * members];
                    for m in 0..members {
                        out[m * d + k] = last[m] + acc_k[m];
                    }
                }
            }
        }
        true
    }

    fn cost_class(&self) -> crate::CostClass {
        // `(R · d²)` multiply-adds per member against an `R · d` window:
        // the regression dwarfs the gather + transpose, so wide lanes
        // pay for the slot-major layout.
        crate::CostClass::Expensive
    }

    fn history_len(&self) -> usize {
        match self.mode {
            VarMode::Levels => self.r,
            VarMode::Differences => self.r + 1,
        }
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "VAR"
    }

    fn export_state(&self) -> Option<crate::ForecasterState> {
        Some(crate::ForecasterState::Var(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast_horizon;
    use foreco_teleop::Skill;

    /// Plant a stable linear dynamic c_{i+1} = A c_i + b + ε and verify
    /// OLS identifies A and b (consistency of the VAR estimator: the
    /// innovations ε are exogenous white noise, so the regression is
    /// unbiased and the error shrinks like 1/√n).
    #[test]
    fn recovers_planted_linear_dynamics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let a = [[0.9, 0.05], [-0.1, 0.8]];
        let b = [0.01, -0.02];
        let mut rng = StdRng::seed_from_u64(314);
        let mut noise = move || 0.01 * (rng.gen::<f64>() - 0.5);
        let mut cmds = vec![vec![0.5, -0.3]];
        for i in 0..5000 {
            let prev = &cmds[i];
            cmds.push(vec![
                a[0][0] * prev[0] + a[0][1] * prev[1] + b[0] + noise(),
                a[1][0] * prev[0] + a[1][1] * prev[1] + b[1] + noise(),
            ]);
        }
        let ds = Dataset {
            period: 0.02,
            commands: cmds,
            cycle_starts: vec![0],
        };
        let var = Var::fit(&ds, 1, 0.0).unwrap();
        let beta = var.coefficients(); // rows: [bias, c^0 lag, c^1 lag]
        for k in 0..2 {
            assert!(
                (beta[(0, k)] - b[k]).abs() < 0.01,
                "bias[{k}] = {}",
                beta[(0, k)]
            );
            for l in 0..2 {
                assert!(
                    (beta[(1 + l, k)] - a[k][l]).abs() < 0.05,
                    "A[{k}][{l}] = {} vs {}",
                    beta[(1 + l, k)],
                    a[k][l]
                );
            }
        }
    }

    #[test]
    fn differenced_var_multistep_is_stable_in_dwell() {
        // During a dwell the operator is stationary; a 25-step recursive
        // forecast must stay ~put instead of drifting (the failure mode of
        // levels mode that motivates VarMode::Differences).
        let train = Dataset::record(Skill::Experienced, 3, 0.02, 21);
        let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        // Build a stationary history.
        let pose = vec![0.3, -0.2, 0.25, 0.0, -0.3, 0.1];
        let hist = vec![pose.clone(); 10];
        let preds = forecast_horizon(&var, &hist, 25);
        for (s, p) in preds.iter().enumerate() {
            for (a, b) in p.iter().zip(&pose) {
                assert!((a - b).abs() < 0.02, "step {s}: drifted to {a} from {b}");
            }
        }
    }

    #[test]
    fn differenced_var_continues_a_ramp() {
        let train = Dataset::record(Skill::Experienced, 3, 0.02, 22);
        let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        // Steady motion: joint 0 advancing 0.01 rad/tick.
        let hist: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![0.01 * i as f64, 0.0, 0.0, 0.0, 0.0, 0.0])
            .collect();
        let pred = var.forecast(&hist);
        // Should continue forward, not undershoot like MA.
        assert!(pred[0] > 0.09, "predicted {}", pred[0]);
    }

    #[test]
    fn beats_ma_on_teleop_data() {
        // The paper's core Fig. 7 ordering: VAR ≤ MA in one-step RMSE.
        let train = Dataset::record(Skill::Experienced, 3, 0.02, 100);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 999);
        let var = Var::fit(&train, 5, 1e-6).unwrap();
        let ma = crate::MovingAverage::new(5, 6);
        let var_rmse = crate::one_step_rmse(&var, &test);
        let ma_rmse = crate::one_step_rmse(&ma, &test);
        assert!(
            var_rmse < ma_rmse,
            "VAR {var_rmse} should beat MA {ma_rmse} one-step"
        );
    }

    #[test]
    fn multistep_propagates_smoothly() {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
        let var = Var::fit(&train, 5, 1e-6).unwrap();
        let hist: Vec<Vec<f64>> = train.commands[100..110].to_vec();
        let preds = forecast_horizon(&var, &hist, 25);
        assert_eq!(preds.len(), 25);
        // Predictions stay bounded (no blow-up over 25 steps = the Fig. 9c
        // burst length).
        for p in &preds {
            for &v in p {
                assert!(v.is_finite() && v.abs() < 10.0, "diverged: {v}");
            }
        }
    }

    #[test]
    fn underdetermined_errors_cleanly() {
        let ds = Dataset {
            period: 0.02,
            commands: vec![vec![0.1, 0.2]; 5],
            cycle_starts: vec![0],
        };
        // R = 10 needs ≥ 21 windows; 5 commands give none.
        assert!(Var::fit(&ds, 10, 0.0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let train = Dataset::record(Skill::Experienced, 1, 0.02, 1);
        let var = Var::fit(&train, 3, 1e-6).unwrap();
        let json = serde_json::to_string(&var).unwrap();
        let back: Var = serde_json::from_str(&json).unwrap();
        // serde_json's default float parsing may be 1 ULP off; compare
        // predictions within that noise rather than bit-exactly.
        assert_eq!(back.history_len(), var.history_len());
        let hist = train.commands[..5].to_vec();
        for (a, b) in back.forecast(&hist).iter().zip(var.forecast(&hist)) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    /// The diagnostic that motivated VarMode: levels VAR on smooth teleop
    /// data is (near-)marginally stable, so its recursion drifts.
    #[test]
    fn spectral_radius_diagnoses_stability() {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 31);
        let levels = Var::fit(&train, 5, 1e-6).unwrap();
        let diff = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        let rho_levels = levels.companion_spectral_radius();
        let rho_diff = diff.companion_spectral_radius();
        assert!(
            rho_levels > 0.9,
            "levels VAR should be near-unit-root: {rho_levels}"
        );
        assert!(rho_levels < 1.2, "levels VAR wildly unstable: {rho_levels}");
        assert!(
            rho_diff < 1.05,
            "differenced VAR must be ~stable: {rho_diff}"
        );
        assert!(rho_diff.is_finite() && rho_diff > 0.0);
    }

    #[test]
    fn spectral_radius_of_planted_system() {
        // c_{i+1} = 0.5 c_i: companion eigenvalue exactly 0.5.
        let beta = Matrix::from_rows(&[&[0.0], &[0.5]]);
        let var = Var::from_coefficients(1, 1, beta);
        let rho = var.companion_spectral_radius();
        assert!((rho - 0.5).abs() < 1e-6, "{rho}");
    }

    #[test]
    fn param_count() {
        let train = Dataset::record(Skill::Experienced, 1, 0.02, 2);
        let var = Var::fit(&train, 20, 1e-6).unwrap();
        // (1 + 6·20) × 6 = 726 weights — thousands of times lighter than
        // seq2seq, the root of Table II's friendly training times.
        assert_eq!(var.num_params(), 726);
    }
}
