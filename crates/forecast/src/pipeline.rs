//! The FoReCo training pipeline with Table-I's stage structure.
//!
//! Table I profiles FoReCo's (re)training on the robot's Raspberry Pi 3 in
//! four stages: **Load Data → Down Sampling → Check Quality → Training
//! Model**. This module reproduces the pipeline with per-stage wall-clock
//! timings so the `table1_training_profile` bench can regenerate the
//! table's rows on the build host.

use crate::Var;
use foreco_linalg::stats;
use foreco_linalg::OlsError;
use foreco_teleop::Dataset;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Down-sampling factor (1 = keep everything).
    pub downsample: usize,
    /// History length `R` for the VAR fit.
    pub r: usize,
    /// Ridge regulariser for the OLS solve.
    pub ridge: f64,
    /// Z-score beyond which a command counts as an outlier.
    pub outlier_z: f64,
    /// Per-command joint jump (rad) beyond which a gap is flagged
    /// (physically bounded by the 0.04 rad moving offset).
    pub max_step: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            downsample: 1,
            r: 5,
            ridge: 1e-6,
            outlier_z: 6.0,
            max_step: 0.05,
        }
    }
}

/// Dataset-quality findings (the "Check Quality" stage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Commands containing NaN/inf.
    pub non_finite: usize,
    /// Commands whose inter-command jump exceeds `max_step` on any joint.
    pub step_violations: usize,
    /// Per-joint count of |z| > `outlier_z` samples.
    pub outliers: Vec<usize>,
    /// Exact consecutive duplicates (dwell phases make some normal).
    pub duplicates: usize,
    /// Per-joint lag-1 autocorrelation (should be ≈ 1 for smooth teleop).
    pub lag1_autocorrelation: Vec<f64>,
}

impl QualityReport {
    /// True when the dataset is trainable: finite and mostly smooth.
    pub fn is_acceptable(&self, len: usize) -> bool {
        self.non_finite == 0 && self.step_violations < len / 10
    }
}

/// Wall-clock seconds spent in each Table-I stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// "Load Data" — materialising the command history.
    pub load: f64,
    /// "Down Sampling".
    pub downsample: f64,
    /// "Check Quality".
    pub check_quality: f64,
    /// "Training Model" — the OLS fit.
    pub train: f64,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> f64 {
        self.load + self.downsample + self.check_quality + self.train
    }
}

/// Output of a full pipeline run.
pub struct PipelineRun {
    /// The trained VAR model.
    pub model: Var,
    /// Quality findings.
    pub quality: QualityReport,
    /// Stage timings.
    pub timings: StageTimings,
}

/// Runs Load → Down-sample → Check-quality → Train on `source`.
///
/// # Errors
/// Returns the OLS error when training fails (quality problems do not
/// abort the run; they are reported).
pub fn run(source: &Dataset, cfg: &PipelineConfig) -> Result<PipelineRun, OlsError> {
    // Stage 1: Load Data. The paper loads from disk; we materialise a
    // fresh copy of the history, which is the in-memory equivalent.
    let t0 = Instant::now();
    let loaded = source.clone();
    let t_load = t0.elapsed().as_secs_f64();

    // Stage 2: Down Sampling.
    let t0 = Instant::now();
    let data = loaded.downsample(cfg.downsample.max(1));
    let t_down = t0.elapsed().as_secs_f64();

    // Stage 3: Check Quality.
    let t0 = Instant::now();
    let quality = check_quality(&data, cfg);
    let t_quality = t0.elapsed().as_secs_f64();

    // Stage 4: Training Model.
    let t0 = Instant::now();
    let model = Var::fit(&data, cfg.r, cfg.ridge)?;
    let t_train = t0.elapsed().as_secs_f64();

    Ok(PipelineRun {
        model,
        quality,
        timings: StageTimings {
            load: t_load,
            downsample: t_down,
            check_quality: t_quality,
            train: t_train,
        },
    })
}

/// The "Check Quality" stage on its own.
pub fn check_quality(data: &Dataset, cfg: &PipelineConfig) -> QualityReport {
    let d = data.dof();
    let mut non_finite = 0;
    let mut step_violations = 0;
    let mut duplicates = 0;
    for (i, cmd) in data.commands.iter().enumerate() {
        if cmd.iter().any(|v| !v.is_finite()) {
            non_finite += 1;
        }
        if i > 0 {
            let prev = &data.commands[i - 1];
            if cmd == prev {
                duplicates += 1;
            }
            if cmd
                .iter()
                .zip(prev)
                .any(|(a, b)| (a - b).abs() > cfg.max_step)
            {
                step_violations += 1;
            }
        }
    }
    let mut outliers = vec![0usize; d];
    let mut lag1 = vec![0.0; d];
    for k in 0..d {
        let series: Vec<f64> = data.commands.iter().map(|c| c[k]).collect();
        let m = stats::mean(&series);
        let s = stats::std_dev(&series);
        if s > 0.0 {
            outliers[k] = series
                .iter()
                .filter(|&&x| ((x - m) / s).abs() > cfg.outlier_z)
                .count();
        }
        lag1[k] = stats::autocorrelation(&series, 1);
    }
    QualityReport {
        non_finite,
        step_violations,
        outliers,
        duplicates,
        lag1_autocorrelation: lag1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Forecaster;
    use foreco_teleop::Skill;

    #[test]
    fn clean_dataset_passes_quality() {
        let ds = Dataset::record(Skill::Experienced, 2, 0.02, 5);
        let q = check_quality(&ds, &PipelineConfig::default());
        assert_eq!(q.non_finite, 0);
        assert_eq!(q.step_violations, 0, "moving offset bounds every step");
        assert!(q.is_acceptable(ds.len()));
        // Teleop series are extremely smooth: lag-1 autocorrelation ≈ 1
        // on the joints that actually move.
        assert!(
            q.lag1_autocorrelation
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max)
                > 0.95
        );
    }

    #[test]
    fn corrupted_dataset_flagged() {
        let mut ds = Dataset::record(Skill::Experienced, 1, 0.02, 6);
        ds.commands[10][2] = f64::NAN;
        ds.commands[20][0] += 1.0; // teleport
        let q = check_quality(&ds, &PipelineConfig::default());
        assert_eq!(q.non_finite, 1);
        assert!(q.step_violations >= 1);
    }

    #[test]
    fn dwell_duplicates_counted_not_fatal() {
        // Operator tremor keeps real streams free of *exact* duplicates;
        // the noiseless defined trajectory produces them during dwells.
        let ds = Dataset::record(Skill::Experienced, 1, 0.02, 7);
        let q = check_quality(&ds, &PipelineConfig::default());
        assert_eq!(q.duplicates, 0, "tremor should prevent exact duplicates");
        assert!(q.is_acceptable(ds.len()));

        let clean = foreco_teleop::defined_trajectory(
            &foreco_teleop::pick_and_place_cycle()[0].joints.clone(),
            &foreco_teleop::pick_and_place_cycle(),
            0.02,
            0.04,
        );
        let clean_ds = Dataset {
            period: 0.02,
            commands: clean,
            cycle_starts: vec![0],
        };
        let q = check_quality(&clean_ds, &PipelineConfig::default());
        assert!(
            q.duplicates > 0,
            "dwells in the defined trajectory duplicate"
        );
    }

    #[test]
    fn full_pipeline_produces_model_and_timings() {
        let ds = Dataset::record(Skill::Experienced, 2, 0.02, 8);
        let run = run(&ds, &PipelineConfig::default()).unwrap();
        assert_eq!(run.model.history_len(), 5);
        let t = run.timings;
        assert!(t.load >= 0.0 && t.downsample >= 0.0 && t.check_quality >= 0.0);
        assert!(t.train > 0.0, "training must take measurable time");
        assert!((t.total() - (t.load + t.downsample + t.check_quality + t.train)).abs() < 1e-12);
    }

    #[test]
    fn downsampling_shrinks_training_set() {
        let ds = Dataset::record(Skill::Experienced, 2, 0.02, 9);
        let cfg = PipelineConfig {
            downsample: 4,
            ..Default::default()
        };
        let run4 = run(&ds, &cfg).unwrap();
        // Model trains on 1/4 of the windows but still produces a valid
        // 6-joint VAR.
        assert_eq!(run4.model.dims(), 6);
    }
}
