//! Moving-average forecaster — the paper's benchmark (eq. 8):
//! `ĉ_{i+1} = (1/R) Σ_{j=i−R+1..i} ĉ_j`.

use crate::Forecaster;
use serde::{Deserialize, Serialize};

/// Moving average over the last `R` commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    r: usize,
    dims: usize,
}

impl MovingAverage {
    /// Creates an MA forecaster with window `r` for `dims`-dimensional
    /// commands.
    ///
    /// # Panics
    /// Panics if `r == 0` or `dims == 0`.
    pub fn new(r: usize, dims: usize) -> Self {
        assert!(r >= 1, "MA: window must be ≥ 1");
        assert!(dims >= 1, "MA: dims must be ≥ 1");
        Self { r, dims }
    }
}

impl Forecaster for MovingAverage {
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        assert!(
            history.len() >= self.r,
            "MA: need {} commands, got {}",
            self.r,
            history.len()
        );
        let window = &history[history.len() - self.r..];
        let mut mean = vec![0.0; self.dims];
        for cmd in window {
            assert_eq!(cmd.len(), self.dims, "MA: dimension mismatch");
            for (m, c) in mean.iter_mut().zip(cmd) {
                *m += c;
            }
        }
        for m in &mut mean {
            *m /= self.r as f64;
        }
        mean
    }

    fn forecast_into(
        &self,
        history: &crate::HistoryView<'_>,
        _scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) {
        assert!(
            history.len() >= self.r,
            "MA: need {} commands, got {}",
            self.r,
            history.len()
        );
        assert_eq!(history.dims(), self.dims, "MA: dimension mismatch");
        assert_eq!(out.len(), self.dims, "MA: output dimension mismatch");
        out.fill(0.0);
        for cmd in history.suffix(self.r).iter() {
            for (m, c) in out.iter_mut().zip(cmd) {
                *m += c;
            }
        }
        for m in out {
            *m /= self.r as f64;
        }
    }

    fn forecast_batch(
        &self,
        members: usize,
        windows: &[f64],
        _scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let stride = self.r * self.dims;
        assert_eq!(windows.len(), members * stride, "MA: batch window shape");
        assert_eq!(out.len(), members * self.dims, "MA: batch output shape");
        // Per member, the exact scalar kernel over the gathered window:
        // zero, accumulate row by row, divide — same f64 order.
        for (w, o) in windows
            .chunks_exact(stride)
            .zip(out.chunks_exact_mut(self.dims))
        {
            o.fill(0.0);
            for cmd in w.chunks_exact(self.dims) {
                for (m, c) in o.iter_mut().zip(cmd) {
                    *m += c;
                }
            }
            for m in o {
                *m /= self.r as f64;
            }
        }
        true
    }

    fn history_len(&self) -> usize {
        self.r
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "MA"
    }

    fn export_state(&self) -> Option<crate::ForecasterState> {
        Some(crate::ForecasterState::Ma(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_window() {
        let ma = MovingAverage::new(2, 1);
        let hist = vec![vec![0.0], vec![2.0], vec![4.0]];
        // Uses only the last two commands.
        assert_eq!(ma.forecast(&hist), vec![3.0]);
    }

    #[test]
    fn r1_repeats_last_command() {
        // MA with R = 1 is exactly the Niryo "repeat last command"
        // baseline behaviour.
        let ma = MovingAverage::new(1, 3);
        let hist = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        assert_eq!(ma.forecast(&hist), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn constant_series_is_fixed_point() {
        let ma = MovingAverage::new(5, 2);
        let hist = vec![vec![0.7, -0.3]; 5];
        assert_eq!(ma.forecast(&hist), vec![0.7, -0.3]);
    }

    #[test]
    fn lags_behind_a_ramp() {
        // On a ramp the MA prediction is the window midpoint — it
        // *undershoots* the next value, which is why VAR beats it.
        let ma = MovingAverage::new(4, 1);
        let hist: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let pred = ma.forecast(&hist)[0];
        assert_eq!(pred, 1.5);
        assert!(pred < 4.0);
    }

    #[test]
    #[should_panic(expected = "need 3 commands")]
    fn short_history_panics() {
        let ma = MovingAverage::new(3, 1);
        ma.forecast(&[vec![0.0]]);
    }
}
