//! The seq2seq forecaster (paper §IV-B, eqs. 6–7) behind the common
//! [`Forecaster`] trait.
//!
//! Wraps `foreco-nn`'s encoder–decoder LSTM. The paper reports that with
//! `|w| = 163 803` weights the model "did not converge to an optimal
//! solution" and loses to both VAR and MA (Fig. 7) — reproduced here: the
//! default paper-scale architecture under a realistic training budget
//! underfits relative to VAR.

use crate::Forecaster;
use foreco_nn::{Seq2Seq, Seq2SeqConfig, TrainReport};
use foreco_teleop::Dataset;
use serde::{Deserialize, Serialize};

/// Training-budget knobs for [`Seq2SeqForecaster::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Seq2SeqTrainConfig {
    /// Model architecture (paper defaults: 200/30 ReLU).
    pub model: Seq2SeqConfig,
    /// History length `R`.
    pub r: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Keep every `subsample`-th training window (1 = all). The paper
    /// trains on 150k windows; subsampling keeps tests tractable.
    pub subsample: usize,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl Default for Seq2SeqTrainConfig {
    fn default() -> Self {
        Self {
            model: Seq2SeqConfig::default(),
            r: 5,
            epochs: 3,
            subsample: 1,
            seed: 0,
        }
    }
}

/// A trained seq2seq forecaster.
pub struct Seq2SeqForecaster {
    model: Seq2Seq,
    r: usize,
    dims: usize,
    report: TrainReport,
}

impl Seq2SeqForecaster {
    /// Trains on every (subsampled) window of `train`.
    ///
    /// # Panics
    /// Panics if the dataset yields no training windows or `r == 0`.
    pub fn fit(train: &Dataset, cfg: &Seq2SeqTrainConfig) -> Self {
        assert!(cfg.r >= 1, "seq2seq: R must be ≥ 1");
        assert!(cfg.subsample >= 1, "seq2seq: subsample must be ≥ 1");
        let dims = train.dof();
        let mut model_cfg = cfg.model.clone();
        model_cfg.input_dim = dims;
        let mut samples: Vec<(Vec<Vec<f64>>, Vec<f64>)> = Vec::new();
        for (i, (hist, target)) in train.windows(cfg.r).enumerate() {
            if i % cfg.subsample == 0 {
                samples.push((hist.to_vec(), target.clone()));
            }
        }
        assert!(!samples.is_empty(), "seq2seq: no training windows");
        let mut model = Seq2Seq::new(&model_cfg, cfg.seed);
        let report = model.train(&samples, cfg.epochs);
        Self {
            model,
            r: cfg.r,
            dims,
            report,
        }
    }

    /// Per-epoch training losses.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Total trainable weights.
    pub fn num_params(&self) -> usize {
        self.model.num_params()
    }
}

impl Forecaster for Seq2SeqForecaster {
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        assert!(
            history.len() >= self.r,
            "seq2seq: need {} commands, got {}",
            self.r,
            history.len()
        );
        self.model.predict(&history[history.len() - self.r..])
    }

    fn history_len(&self) -> usize {
        self.r
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "seq2seq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_nn::{Activation, AdamConfig};
    use foreco_teleop::Skill;

    fn tiny_cfg() -> Seq2SeqTrainConfig {
        Seq2SeqTrainConfig {
            model: Seq2SeqConfig {
                input_dim: 6,
                encoder_hidden: 16,
                decoder_hidden: 8,
                activation: Activation::Tanh,
                adam: AdamConfig::default(),
                batch_size: 32,
            },
            r: 4,
            epochs: 2,
            subsample: 8,
            seed: 5,
        }
    }

    #[test]
    fn trains_and_predicts_shapes() {
        let train = Dataset::record(Skill::Experienced, 1, 0.02, 3);
        let f = Seq2SeqForecaster::fit(&train, &tiny_cfg());
        let hist = train.commands[..10].to_vec();
        let pred = f.forecast(&hist);
        assert_eq!(pred.len(), 6);
        assert!(pred.iter().all(|v| v.is_finite()));
        assert_eq!(f.history_len(), 4);
    }

    #[test]
    fn training_loss_decreases() {
        let train = Dataset::record(Skill::Experienced, 1, 0.02, 4);
        let mut cfg = tiny_cfg();
        cfg.epochs = 5;
        let f = Seq2SeqForecaster::fit(&train, &cfg);
        let losses = &f.report().epoch_losses;
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss went {losses:?}"
        );
    }

    /// The paper's headline negative result: at a practical training
    /// budget, seq2seq loses to VAR on the teleop data.
    #[test]
    fn underperforms_var_like_the_paper() {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 6);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 60);
        let s2s = Seq2SeqForecaster::fit(&train, &tiny_cfg());
        let var = crate::Var::fit(&train, 4, 1e-6).unwrap();
        let s2s_rmse = crate::one_step_rmse(&s2s, &test);
        let var_rmse = crate::one_step_rmse(&var, &test);
        assert!(
            s2s_rmse > var_rmse,
            "seq2seq {s2s_rmse} unexpectedly beat VAR {var_rmse}"
        );
    }
}
