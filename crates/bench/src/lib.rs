//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every target prints the same rows/series the paper reports. Scale
//! knobs come from the environment so CI can run reduced versions:
//!
//! - `FORECO_CYCLES` — pick-and-place repetitions per dataset
//!   (default 20; the paper's H = 187 109 commands ≈ 100 cycles ×
//!   two operators; 20 keeps a laptop run under a minute per figure).
//! - `FORECO_REPS` — seeded repetitions per Fig.-8 cell (default 10;
//!   paper: 40).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use foreco_forecast::Var;
use foreco_robot::{niryo_one, ArmModel};
use foreco_teleop::{Dataset, Skill};

/// The paper's Fig.-8 interference-probability axis (per-slot activation).
pub const PROBS: [f64; 3] = [0.01, 0.025, 0.05];
/// The paper's Fig.-8 burst-duration axis, in slots.
pub const DURATIONS: [u32; 3] = [10, 50, 100];
/// The paper's Fig.-8 robot counts.
pub const ROBOTS: [usize; 3] = [5, 15, 25];
/// Command period Ω (50 Hz).
pub const OMEGA: f64 = 0.020;

/// Reads a positive integer knob from the environment.
pub fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Dataset cycle count (`FORECO_CYCLES`, default 20).
pub fn cycles() -> usize {
    env_knob("FORECO_CYCLES", 20)
}

/// Fig.-8 repetitions per cell (`FORECO_REPS`, default 10).
pub fn reps() -> usize {
    env_knob("FORECO_REPS", 10)
}

/// The standard experiment fixture: arm model, training dataset
/// (experienced), test dataset (inexperienced), and the deployed
/// differenced VAR(5).
pub struct Fixture {
    /// Niryo-One-like arm.
    pub model: ArmModel,
    /// Experienced-operator recording (training).
    pub train: Dataset,
    /// Inexperienced-operator recording (evaluation).
    pub test: Dataset,
    /// The trained forecaster FoReCo deploys.
    pub var: Var,
}

impl Fixture {
    /// Builds the fixture at the configured scale.
    pub fn build() -> Self {
        let n = cycles();
        let train = Dataset::record(Skill::Experienced, n, OMEGA, 0xF0E0);
        let test = Dataset::record(Skill::Inexperienced, (n / 4).max(2), OMEGA, 0x7E57);
        let var = Var::fit_differenced(&train, 5, 1e-6).expect("training data well-conditioned");
        Self {
            model: niryo_one(),
            train,
            test,
            var,
        }
    }
}

/// Prints a standard header naming the figure/table being regenerated.
pub fn banner(what: &str, paper_ref: &str) {
    println!("==================================================================");
    println!("  {what}");
    println!("  reproduces: {paper_ref}");
    println!("==================================================================");
}
