//! Table II — VAR training and inference times. The paper measures four
//! hardware tiers (Raspberry Pi 3, Jetson Nano, laptop, Xeon server); we
//! have one host, so its row is measured and the paper's rows are quoted
//! for shape comparison (training ≫ inference; inference ≪ Ω = 20 ms).
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin table2_train_infer
//! ```

use foreco_bench::banner;
use foreco_forecast::{Forecaster, Var};
use foreco_linalg::stats::Running;
use foreco_teleop::{Dataset, Skill};
use std::time::Instant;

fn main() {
    banner(
        "Table II — training and inference times",
        "paper §VI-D-3, Table II",
    );
    let cycles = foreco_bench::env_knob("FORECO_CYCLES", 100);
    eprintln!("recording {cycles} cycles…");
    let ds = Dataset::record(Skill::Experienced, cycles, 0.02, 0x7AB2);
    println!("# dataset: {} commands, VAR(R=5) on 6 joints", ds.len());

    // Training time (mean of 3 fits).
    let mut train_acc = Running::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        let _ = Var::fit_differenced(&ds, 5, 1e-6).expect("fit");
        train_acc.push(t0.elapsed().as_secs_f64());
    }
    let var = Var::fit_differenced(&ds, 5, 1e-6).expect("fit");

    // Inference time (mean over 100k forecasts).
    let hist = ds.commands[..var.history_len() + 1].to_vec();
    let iters = 100_000;
    let t0 = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iters {
        sink += var.forecast(&hist)[0];
    }
    let infer = t0.elapsed().as_secs_f64() / iters as f64;
    assert!(sink.is_finite());

    println!(
        "\n{:<28} {:>14} {:>16}",
        "platform", "training [min]", "inference [ms]"
    );
    println!(
        "{:<28} {:>14.4} {:>16.6}   ← measured",
        "this host",
        train_acc.mean() / 60.0,
        infer * 1e3
    );
    for (name, tr, inf) in [
        ("Raspberry Pi 3 (robot)", "5.99", "1.60"),
        ("NVIDIA Jetson Nano (robot)", "1.31", "0.61"),
        ("Laptop (UE)", "0.36", "0.22"),
        ("Local server (Edge)", "0.23", "0.0001"),
    ] {
        println!("{name:<28} {tr:>14} {inf:>16}   (paper)");
    }
    println!(
        "\nshape checks: inference ({:.4} ms) ≪ Ω = 20 ms → fits the control loop;",
        infer * 1e3
    );
    println!(
        "training/inference ratio ≈ {:.0} (paper spans 10⁵–10⁶ across tiers)",
        train_acc.mean() / infer
    );
}
