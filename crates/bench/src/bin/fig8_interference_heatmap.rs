//! Fig. 8 — the six heatmaps: trajectory RMSE \[mm\] with and without
//! FoReCo for {5, 15, 25} robots over the interference grid
//! p_if ∈ {1, 2.5, 5} % × T_if ∈ {10, 50, 100} slots, averaged over
//! seeded repetitions (paper: 40; default here 10, `FORECO_REPS=40` for
//! the full run).
//!
//! ```sh
//! FORECO_REPS=40 cargo run --release -p foreco-bench --bin fig8_interference_heatmap
//! ```

use foreco_bench::{banner, reps, Fixture, DURATIONS, PROBS, ROBOTS};
use foreco_core::experiment::{run_cell, CellConfig, CellResult};
use foreco_wifi::Interference;
use std::sync::mpsc;
use std::thread;

fn main() {
    banner(
        "Fig. 8 — interference grid heatmaps",
        "paper §VI-C, Fig. 8 (a)–(f)",
    );
    let fx = Fixture::build();
    let repetitions = reps();
    let commands = fx.test.commands.clone();
    println!(
        "# {} commands per run, {} repetitions per cell, τ = 0, Ω = 20 ms",
        commands.len(),
        repetitions
    );

    // One worker thread per robot count; cells within a worker run
    // sequentially (each already averages `repetitions` seeded runs).
    let (tx, rx) = mpsc::channel::<(usize, f64, u32, CellResult)>();
    thread::scope(|scope| {
        for &robots in &ROBOTS {
            let tx = tx.clone();
            let fxm = &fx;
            let cmds = &commands;
            scope.spawn(move || {
                for &p in &PROBS {
                    for &t in &DURATIONS {
                        let cell = CellConfig {
                            robots,
                            interference: Interference::new(p, t),
                            repetitions,
                            tolerance: 0.0,
                            seed: 0xF18_0000 + robots as u64,
                        };
                        let var = fxm.var.clone();
                        let res = run_cell(&fxm.model, cmds, &|| Box::new(var.clone()), &cell);
                        tx.send((robots, p, t, res)).expect("collector alive");
                    }
                }
            });
        }
        drop(tx);
        let mut grid = std::collections::BTreeMap::new();
        for (robots, p, t, res) in rx {
            grid.insert((robots, (p * 1000.0) as u32, t), res);
        }

        for &robots in &ROBOTS {
            println!("\n--- {robots} robots ---");
            println!(
                "{:<12} {:<10} {:>10} {:>12} {:>10} {:>8}",
                "p_if [%]", "T_if", "no-fc [mm]", "FoReCo [mm]", "miss rate", "factor"
            );
            for &p in &PROBS {
                for &t in &DURATIONS {
                    let res = &grid[&(robots, (p * 1000.0) as u32, t)];
                    // Below measurement noise both ways: no meaningful factor.
                    let factor = if res.no_forecast_rmse_mm < 0.05 {
                        "    —".to_string()
                    } else {
                        format!("{:>5.1}", res.improvement_factor())
                    };
                    println!(
                        "{:<12} {:<10} {:>10.2} {:>12.2} {:>10.3} {:>8}",
                        p * 100.0,
                        t,
                        res.no_forecast_rmse_mm,
                        res.foreco_rmse_mm,
                        res.miss_rate,
                        factor
                    );
                }
            }
        }

        // The paper's headline: worst-cell improvement at 25 robots.
        let worst = &grid[&(25, 50, 100)];
        println!(
            "\nworst cell (25 robots, 5 %, 100 slots): no-fc {:.2} mm vs FoReCo {:.2} mm → x{:.1}",
            worst.no_forecast_rmse_mm,
            worst.foreco_rmse_mm,
            worst.improvement_factor()
        );
        println!("(paper: 368.74 mm vs 19.83 mm → x18.6; see EXPERIMENTS.md for the gap analysis)");
    });
}
