//! Edge-based vs robot-side FoReCo (§VII-D future work, implemented).
//!
//! The edge sees every real command (it lives on the wired side) and
//! piggybacks a horizon of forecasts on each packet; the robot covers a
//! miss with the piggybacked prediction of the last packet it received.
//! This binary compares the two deployments across channel regimes.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin edge_vs_local
//! ```

use foreco_bench::{banner, Fixture};
use foreco_core::channel::{Channel, ControlledLossChannel, JammedChannel};
use foreco_core::edge::run_closed_loop_edge;
use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
use foreco_robot::DriverConfig;
use foreco_wifi::{Interference, LinkConfig};

fn main() {
    banner(
        "Edge-based vs robot-side FoReCo",
        "paper §VII-D (future work, implemented)",
    );
    let fx = Fixture::build();
    let commands = &fx.test.commands[..1500.min(fx.test.commands.len())];
    let horizon = 16; // piggybacked predictions per packet (320 ms)

    let scenarios: Vec<(&str, Vec<Vec<foreco_core::Arrival>>)> = vec![
        (
            "bursts of 10",
            (0..4)
                .map(|s| ControlledLossChannel::new(10, 0.008, 0xED0 + s).fates(commands.len()))
                .collect(),
        ),
        (
            "bursts of 25",
            (0..4)
                .map(|s| ControlledLossChannel::new(25, 0.005, 0xED1 + s).fates(commands.len()))
                .collect(),
        ),
        (
            "jammed (15 robots, 4 %, 60)",
            (0..4)
                .map(|s| {
                    JammedChannel::new(
                        LinkConfig {
                            stations: 15,
                            interference: Interference::new(0.04, 60),
                            ..LinkConfig::default()
                        },
                        0.0,
                        0xED2 + s,
                    )
                    .fates(commands.len())
                })
                .collect(),
        ),
        (
            "sustained (25 robots, 5 %, 100)",
            (0..4)
                .map(|s| {
                    JammedChannel::new(
                        LinkConfig {
                            stations: 25,
                            interference: Interference::new(0.05, 100),
                            ..LinkConfig::default()
                        },
                        0.0,
                        0xED3 + s,
                    )
                    .fates(commands.len())
                })
                .collect(),
        ),
    ];

    println!(
        "\n{:<32} {:>12} {:>12} {:>12}",
        "scenario", "no-fc [mm]", "local [mm]", "edge [mm]"
    );
    for (name, fate_sets) in &scenarios {
        let mut base = 0.0;
        let mut local = 0.0;
        let mut edge = 0.0;
        for fates in fate_sets {
            base += run_closed_loop(
                &fx.model,
                commands,
                fates,
                RecoveryMode::Baseline,
                DriverConfig::default(),
            )
            .rmse_mm;
            let engine = RecoveryEngine::new(
                Box::new(fx.var.clone()),
                RecoveryConfig::for_model(&fx.model),
                fx.model.clamp(&commands[0]),
            );
            local += run_closed_loop(
                &fx.model,
                commands,
                fates,
                RecoveryMode::FoReCo(engine),
                DriverConfig::default(),
            )
            .rmse_mm;
            edge += run_closed_loop_edge(
                &fx.model,
                commands,
                fates,
                &fx.var,
                horizon,
                DriverConfig::default(),
            )
            .rmse_mm;
        }
        let n = fate_sets.len() as f64;
        println!(
            "{:<32} {:>12.2} {:>12.2} {:>12.2}",
            name,
            base / n,
            local / n,
            edge / n
        );
    }
    println!("\nreading: edge forecasts come from real data only (no Fig.-9c recursion),");
    println!("but age with the outage and die at the {horizon}-command piggyback horizon;");
    println!("the paper's §VII-D anticipates exactly this trade-off.");
}
