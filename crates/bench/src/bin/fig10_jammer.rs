//! Fig. 10 — trajectory under a real-jammer-like 802.11 interference
//! episode, including the PID re-stabilisation transient after channel
//! recovery.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin fig10_jammer
//! ```

use foreco_bench::{banner, Fixture, OMEGA};
use foreco_core::channel::{Arrival, Channel, JammedChannel};
use foreco_core::metrics::distance_series;
use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
use foreco_robot::DriverConfig;
use foreco_wifi::{Interference, LinkConfig};

fn main() {
    banner("Fig. 10 — jammed 802.11 episode", "paper §VI-D-2, Fig. 10");
    let fx = Fixture::build();
    let n = ((30.0 / OMEGA) as usize).min(fx.test.commands.len());
    let commands = &fx.test.commands[..n];

    // A single-robot cell with a strong jammer — the testbed's layout
    // (one Niryo One + the Silvercrest transmitter).
    let link = LinkConfig {
        stations: 1,
        interference: Interference::new(0.05, 150),
        ..LinkConfig::default()
    };
    let mut channel = JammedChannel::new(link, 0.0, 0xF10);
    let fates = channel.fates(commands.len());
    let misses = fates.iter().filter(|f| !f.on_time()).count();
    println!(
        "# 30 s run, {misses}/{n} commands missed (jammer duty ≈ {:.0} %)",
        link.interference.coverage() * 100.0
    );

    let base = run_closed_loop(
        &fx.model,
        commands,
        &fates,
        RecoveryMode::Baseline,
        DriverConfig::default(),
    );
    let engine = RecoveryEngine::new(
        Box::new(fx.var.clone()),
        RecoveryConfig::for_model(&fx.model),
        fx.model.clamp(&commands[0]),
    );
    let fore = run_closed_loop(
        &fx.model,
        commands,
        &fates,
        RecoveryMode::FoReCo(engine),
        DriverConfig::default(),
    );
    println!("\n  no forecasting : RMSE {:6.2} mm", base.rmse_mm);
    println!("  FoReCo         : RMSE {:6.2} mm", fore.rmse_mm);
    println!(
        "  improvement    : x{:.2}   (paper: 18.91 → 8.72 mm, x2.17)",
        base.rmse_mm / fore.rmse_mm.max(1e-9)
    );

    // PID re-stabilisation transient (the paper annotates ~400 ms): for
    // every outage of ≥ 5 commands, measure how long the baseline
    // trajectory needs to re-converge to within 2 mm of the defined one
    // after the channel recovers; report the worst episode (outages that
    // land in dwell phases recover instantly and are not the story).
    let defined = distance_series(&base.defined);
    let executed = distance_series(&base.executed);
    let mut outages: Vec<(usize, usize)> = Vec::new(); // (start, len)
    let mut run_start = None;
    for (i, f) in fates.iter().enumerate() {
        match (f, run_start) {
            (Arrival::OnTime, Some(s)) => {
                outages.push((s, i - s));
                run_start = None;
            }
            (Arrival::OnTime, None) => {}
            (_, None) => run_start = Some(i),
            (_, Some(_)) => {}
        }
    }
    let mut worst: Option<(usize, usize, usize)> = None; // (start, len, settle_ticks)
    for &(start, len) in outages.iter().filter(|(_, len)| *len >= 5) {
        let recovery_tick = start + len;
        let mut settle_ticks = usize::MAX;
        for i in recovery_tick..defined.len() {
            if (executed[i] - defined[i]).abs() < 2.0 {
                settle_ticks = i - recovery_tick;
                break;
            }
        }
        if settle_ticks != usize::MAX && worst.is_none_or(|(_, _, s)| settle_ticks > s) {
            worst = Some((start, len, settle_ticks));
        }
    }
    if let Some((start, len, settle)) = worst {
        println!(
            "\n  worst recovery episode: {len}-command outage ({:.0} ms) ending at t = {:.2} s",
            len as f64 * OMEGA * 1e3,
            (start + len) as f64 * OMEGA
        );
        println!(
            "  baseline PID re-stabilisation after recovery: {:.0} ms (paper: ~400 ms)",
            settle as f64 * OMEGA * 1e3
        );
    }
}
