//! Table I — time profiling of the FoReCo training pipeline:
//! Load Data → Down Sampling → Check Quality → Training Model.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin table1_training_profile
//! ```

use foreco_bench::banner;
use foreco_forecast::pipeline::{self, PipelineConfig};
use foreco_linalg::stats::Running;
use foreco_teleop::{Dataset, Skill};

fn main() {
    banner(
        "Table I — training-pipeline time profile",
        "paper §VI-D-3, Table I",
    );
    // Paper-scale dataset: ~100 cycles ≈ 70k+ commands (the paper's
    // H = 187 109 includes two operators; one suffices for the profile).
    let cycles = foreco_bench::env_knob("FORECO_CYCLES", 100);
    eprintln!("recording {cycles} cycles…");
    let ds = Dataset::record(Skill::Experienced, cycles, 0.02, 0x7AB1);
    println!("# dataset: {} commands", ds.len());

    let runs = 5;
    let mut load = Running::new();
    let mut down = Running::new();
    let mut quality = Running::new();
    let mut train = Running::new();
    for _ in 0..runs {
        let run = pipeline::run(&ds, &PipelineConfig::default()).expect("pipeline");
        load.push(run.timings.load);
        down.push(run.timings.downsample);
        quality.push(run.timings.check_quality);
        train.push(run.timings.train);
    }
    println!(
        "\n{:<18} {:>12} {:>10}   (mean ± std over {runs} runs)",
        "stage", "mean [s]", "std [s]"
    );
    for (name, acc) in [
        ("Load Data", &load),
        ("Down Sampling", &down),
        ("Check Quality", &quality),
        ("Training Model", &train),
    ] {
        println!("{:<18} {:>12.4} {:>10.4}", name, acc.mean(), acc.std_dev());
    }
    println!("\npaper (Raspberry Pi 3): load 1.95 s, down-sample 0.26 s,");
    println!("check quality 306.38 s, training 50.98 s — shape to hold:");
    println!("per-stage ordering and training ≫ load/down-sample.");
}
