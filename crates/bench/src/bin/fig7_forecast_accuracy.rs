//! Fig. 7 — forecast RMSE \[mm\] vs forecasting window (20…1000 ms) for
//! VAR, MA and seq2seq; the best `R ∈ {1..20}` is chosen per algorithm on
//! a short window exactly like the paper.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin fig7_forecast_accuracy
//! ```

use foreco_bench::{banner, Fixture, OMEGA};
use foreco_core::metrics::command_rmse_mm;
use foreco_forecast::{
    forecast_horizon, Forecaster, MovingAverage, Seq2SeqForecaster, Seq2SeqTrainConfig, Var,
};
use foreco_robot::ArmModel;
use foreco_teleop::Dataset;

/// Task-space RMSE of `steps`-ahead recursive forecasts over the test
/// set, sampled every `stride` windows.
fn horizon_rmse(
    model: &ArmModel,
    f: &dyn Forecaster,
    test: &Dataset,
    steps: usize,
    stride: usize,
) -> f64 {
    let r = f.history_len();
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    let mut idx = r;
    while idx + steps <= test.commands.len() {
        let hist = &test.commands[idx - r..idx];
        let horizon = forecast_horizon(f, hist, steps);
        preds.push(horizon.last().expect("steps >= 1").clone());
        actuals.push(test.commands[idx + steps - 1].clone());
        idx += stride;
    }
    command_rmse_mm(model, &preds, &actuals)
}

fn main() {
    banner(
        "Fig. 7 — forecast accuracy vs forecasting window",
        "paper §VI-B, Fig. 7",
    );
    let fx = Fixture::build();
    println!(
        "# train: {} cmds (experienced)   test: {} cmds (inexperienced)",
        fx.train.len(),
        fx.test.len()
    );

    // Pick the best R per algorithm on the 100 ms (5-step) horizon.
    let pick_r = |name: &str, make: &dyn Fn(usize) -> Option<Box<dyn Forecaster>>| {
        let mut best = (1usize, f64::MAX);
        for r in 1..=20 {
            if let Some(f) = make(r) {
                let e = horizon_rmse(&fx.model, f.as_ref(), &fx.test, 5, 97);
                if e < best.1 {
                    best = (r, e);
                }
            }
        }
        println!(
            "# best R for {name}: {} (selection RMSE {:.2} mm)",
            best.0, best.1
        );
        best.0
    };
    let r_ma = pick_r("MA", &|r| {
        Some(Box::new(MovingAverage::new(r, 6)) as Box<dyn Forecaster>)
    });
    let r_var = pick_r("VAR", &|r| {
        Var::fit_differenced(&fx.train, r, 1e-6)
            .ok()
            .map(|v| Box::new(v) as Box<dyn Forecaster>)
    });

    let ma = MovingAverage::new(r_ma, 6);
    let var = Var::fit_differenced(&fx.train, r_var, 1e-6).expect("fit");

    // seq2seq at the paper's architecture; training budget bounded by
    // subsampling (documented in EXPERIMENTS.md — the paper itself reports
    // the model failing to converge at full scale).
    eprintln!("training seq2seq (200/30 ReLU, subsampled)…");
    let s2s = Seq2SeqForecaster::fit(
        &fx.train,
        &Seq2SeqTrainConfig {
            r: 10,
            epochs: 2,
            subsample: 64,
            ..Default::default()
        },
    );

    println!("# columns: window_ms  VAR_mm  MA_mm  seq2seq_mm");
    for steps in [1usize, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50] {
        let window_ms = steps as f64 * OMEGA * 1e3;
        let e_var = horizon_rmse(&fx.model, &var, &fx.test, steps, 53);
        let e_ma = horizon_rmse(&fx.model, &ma, &fx.test, steps, 53);
        let e_s2s = horizon_rmse(&fx.model, &s2s, &fx.test, steps, 53);
        println!("{window_ms:6.0}\t{e_var:8.2}\t{e_ma:8.2}\t{e_s2s:8.2}");
    }
    eprintln!("expected shape (paper): errors grow with the window; VAR ≤ MA ≪ seq2seq");
}
