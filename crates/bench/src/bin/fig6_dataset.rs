//! Fig. 6 — the pick-and-place dataset: distance from origin \[mm\] over
//! time, inexperienced operator.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin fig6_dataset > fig6.tsv
//! ```

use foreco_bench::{banner, Fixture, OMEGA};

fn main() {
    banner("Fig. 6 — robot trajectory dataset", "paper §VI-A, Fig. 6");
    let fx = Fixture::build();
    let ds = &fx.test;
    println!(
        "# dataset: {} commands, {} cycles, {} Hz",
        ds.len(),
        ds.cycle_starts.len(),
        1.0 / OMEGA
    );
    println!("# columns: time_s  distance_from_origin_mm  cycle_start_flag");
    let mut next_cycle = 0usize;
    for (i, cmd) in ds.commands.iter().enumerate() {
        let dist = fx.model.chain.distance_from_origin_mm(cmd);
        let is_start = next_cycle < ds.cycle_starts.len() && ds.cycle_starts[next_cycle] == i;
        if is_start {
            next_cycle += 1;
        }
        println!(
            "{:.3}\t{:.2}\t{}",
            (i as f64) * OMEGA,
            dist,
            u8::from(is_start)
        );
    }
    // Summary row matching the figure's visual band (~200–500 mm).
    let dists: Vec<f64> = ds
        .commands
        .iter()
        .map(|c| fx.model.chain.distance_from_origin_mm(c))
        .collect();
    let min = dists.iter().cloned().fold(f64::MAX, f64::min);
    let max = dists.iter().cloned().fold(f64::MIN, f64::max);
    eprintln!("distance-from-origin band: {min:.1} – {max:.1} mm (paper's Fig. 6: ~200 – 500 mm)");
}
