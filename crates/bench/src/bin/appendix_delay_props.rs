//! Appendix — numerical demonstrations of Lemma 1 and Corollaries 1–2:
//! the wireless delay is bounded only in expectation, has positive loss
//! mass at infinity, and violates the causality assumption.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin appendix_delay_props
//! ```

use foreco_bench::banner;
use foreco_wifi::{CommandFate, DcfModel, Interference, LinkConfig, Params, WirelessLink};

fn main() {
    banner(
        "Appendix — delay properties under interference",
        "paper Appendix, Lemma 1 / Cor. 1–2",
    );
    let interference = Interference::new(0.025, 50);
    let sol = DcfModel {
        params: Params::default_paper(),
        stations: 15,
        interference,
        offered_interval: Some(0.020),
    }
    .solve();

    println!("\nLemma 1 — conditional mean delay is finite, loss mass is not:");
    println!(
        "  E[ΔW | delivered] = {:.3} ms",
        sol.mean_delay_delivered * 1e3
    );
    println!(
        "  P(lost at RTX limit) = a_(m+2) = p^(m+2) = {:.3e}",
        sol.loss_probability
    );
    println!(
        "  per-stage delays E_j[ΔW] (ms): {:?}",
        sol.stage_delays
            .iter()
            .map(|d| (d * 1e5).round() / 1e2)
            .collect::<Vec<_>>()
    );

    println!("\nCorollary 1 — P(Δ > K) > 0 for every K (delay diverges):");
    for k_ms in [20.0, 100.0, 1000.0, 10_000.0] {
        // Conservative bound: the RTX-loss mass alone exceeds any K.
        println!(
            "  P(Δ > {k_ms:>7} ms) ≥ {:.3e}  (RTX-loss mass)",
            sol.loss_probability
        );
    }

    println!("\nCorollary 2 — causality assumption |Δ(c_i+1) − Δ(c_i)| ≤ |g(c_i+1) − g(c_i)|:");
    let mut link = WirelessLink::new(
        LinkConfig {
            stations: 15,
            interference,
            ..LinkConfig::default()
        },
        0xA99,
    );
    let fates = link.simulate(100_000);
    let omega = 0.020;
    let mut pairs = 0u64;
    let mut violations = 0u64;
    let mut prev: Option<f64> = None;
    for f in &fates {
        match f {
            CommandFate::Delivered { delay } => {
                if let Some(p) = prev {
                    pairs += 1;
                    if (delay - p).abs() > omega {
                        violations += 1;
                    }
                }
                prev = Some(*delay);
            }
            _ => prev = None, // a lost command breaks the consecutive pair
        }
    }
    println!(
        "  consecutive delivered pairs: {pairs}; causality violations: {violations} ({:.2} %)",
        100.0 * violations as f64 / pairs as f64
    );
    println!("  → the assumption fails on this channel, as Corollary 2 states;");
    println!("    the control-theory solutions of §II that rely on it are inapplicable.");
}
