//! Fig. 9 — controlled consecutive-loss experiments: bursts of exactly
//! 5, 10 and 25 lost commands; trajectories and RMSE with and without
//! FoReCo.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin fig9_controlled_losses
//! ```

use foreco_bench::{banner, Fixture, OMEGA};
use foreco_core::channel::{Channel, ControlledLossChannel};
use foreco_core::metrics::distance_series;
use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
use foreco_robot::DriverConfig;

fn main() {
    banner(
        "Fig. 9 — controlled consecutive losses",
        "paper §VI-D-1, Fig. 9 (a)–(c)",
    );
    let fx = Fixture::build();
    // 30-second runs like the paper's experiments.
    let n = ((30.0 / OMEGA) as usize).min(fx.test.commands.len());
    let commands = &fx.test.commands[..n];
    println!("# run length: {n} commands ({:.0} s)", n as f64 * OMEGA);
    println!(
        "\n{:<22} {:>8} {:>14} {:>12} {:>8}",
        "burst [cmds]", "misses", "no-fc [mm]", "FoReCo [mm]", "factor"
    );

    for burst in [5usize, 10, 25] {
        let fates =
            ControlledLossChannel::new(burst, 0.006, 0xF19 + burst as u64).fates(commands.len());
        let base = run_closed_loop(
            &fx.model,
            commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        );
        let engine = RecoveryEngine::new(
            Box::new(fx.var.clone()),
            RecoveryConfig::for_model(&fx.model),
            fx.model.clamp(&commands[0]),
        );
        let fore = run_closed_loop(
            &fx.model,
            commands,
            &fates,
            RecoveryMode::FoReCo(engine),
            DriverConfig::default(),
        );
        println!(
            "{:<22} {:>8} {:>14.2} {:>12.2} {:>8.1}",
            burst,
            base.misses,
            base.rmse_mm,
            fore.rmse_mm,
            base.rmse_mm / fore.rmse_mm.max(1e-9)
        );

        // Trajectory excerpt around the first burst (the paper's zoomed
        // panels): defined / no-forecast / FoReCo.
        if let Some(first_miss) = fates.iter().position(|f| !f.on_time()) {
            let lo = first_miss.saturating_sub(5);
            let hi = (first_miss + burst + 20).min(commands.len());
            let defined = distance_series(&base.defined);
            let b = distance_series(&base.executed);
            let f = distance_series(&fore.executed);
            println!("  trajectory excerpt around the first burst (t, defined, no-fc, FoReCo):");
            for i in (lo..hi).step_by(5) {
                println!(
                    "    {:6.2}s {:8.2} {:8.2} {:8.2}",
                    (i as f64 + 1.0) * OMEGA,
                    defined[i],
                    b[i],
                    f[i]
                );
            }
        }
    }
    println!("\n(paper: FoReCo RMSE between 1.35 and 9.27 mm; error grows with the burst");
    println!(" length because forecasts recursively consume earlier forecasts — Fig. 9c)");
}
