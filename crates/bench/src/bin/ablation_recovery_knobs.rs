//! Ablation: which recovery-engine safeguards earn their keep?
//!
//! DESIGN.md §5 documents four deployment refinements on top of the
//! paper's protocol — differenced VAR, dead-reckoning history rebase,
//! adaptive trend damping, and the moving-offset step clamp. This bench
//! removes them one at a time and measures the trajectory RMSE on two
//! workloads:
//!
//! - **bursts**: isolated 25-command losses (Fig. 9c's hardest panel);
//! - **sustained**: the worst Fig.-8 cell (25 robots, 5 %, 100 slots).
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin ablation_recovery_knobs
//! ```

use foreco_bench::{banner, Fixture};
use foreco_core::channel::{Channel, ControlledLossChannel, JammedChannel};
use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
use foreco_forecast::{Var, VarMode};
use foreco_robot::DriverConfig;
use foreco_wifi::{Interference, LinkConfig};

fn main() {
    banner(
        "Ablation — recovery-engine safeguards",
        "DESIGN.md §5/§8 (not in the paper)",
    );
    let fx = Fixture::build();
    let commands = &fx.test.commands[..1500.min(fx.test.commands.len())];
    let var_levels = Var::fit_mode(&fx.train, 5, 1e-6, VarMode::Levels).expect("fit");

    let burst_fates: Vec<Vec<foreco_core::Arrival>> = (0..4)
        .map(|s| ControlledLossChannel::new(25, 0.006, 0xAB1 + s).fates(commands.len()))
        .collect();
    let link = LinkConfig {
        stations: 25,
        interference: Interference::new(0.05, 100),
        ..LinkConfig::default()
    };
    let sustained_fates: Vec<Vec<foreco_core::Arrival>> = (0..4)
        .map(|s| JammedChannel::new(link, 0.0, 0xAB2 + s).fates(commands.len()))
        .collect();

    let eval = |cfg: &RecoveryConfig, levels: bool, fates_set: &[Vec<foreco_core::Arrival>]| {
        let mut sum = 0.0;
        for fates in fates_set {
            let forecaster: Box<dyn foreco_forecast::Forecaster> = if levels {
                Box::new(var_levels.clone())
            } else {
                Box::new(fx.var.clone())
            };
            let engine = RecoveryEngine::new(forecaster, cfg.clone(), fx.model.clamp(&commands[0]));
            sum += run_closed_loop(
                &fx.model,
                commands,
                fates,
                RecoveryMode::FoReCo(engine),
                DriverConfig::default(),
            )
            .rmse_mm;
        }
        sum / fates_set.len() as f64
    };
    let baseline = |fates_set: &[Vec<foreco_core::Arrival>]| {
        let mut sum = 0.0;
        for fates in fates_set {
            sum += run_closed_loop(
                &fx.model,
                commands,
                fates,
                RecoveryMode::Baseline,
                DriverConfig::default(),
            )
            .rmse_mm;
        }
        sum / fates_set.len() as f64
    };

    let full = RecoveryConfig::for_model(&fx.model);
    let variants: Vec<(&str, RecoveryConfig, bool)> = vec![
        ("full configuration (deployed)", full.clone(), false),
        ("levels VAR (paper's literal eq. 5)", full.clone(), true),
        (
            "no history rebase",
            RecoveryConfig {
                history_rebase: false,
                ..full.clone()
            },
            false,
        ),
        (
            "no trend damping",
            RecoveryConfig {
                trend_damping: None,
                ..full.clone()
            },
            false,
        ),
        (
            "no step clamp",
            RecoveryConfig {
                max_step: None,
                ..full.clone()
            },
            false,
        ),
        (
            "no horizon cap",
            RecoveryConfig {
                max_consecutive_forecasts: None,
                ..full.clone()
            },
            false,
        ),
        (
            "paper protocol (all safeguards off)",
            RecoveryConfig {
                history_rebase: false,
                trend_damping: None,
                max_step: None,
                max_consecutive_forecasts: None,
                ..full.clone()
            },
            false,
        ),
    ];

    println!(
        "\n{:<40} {:>14} {:>16}",
        "variant", "bursts-25 [mm]", "sustained [mm]"
    );
    println!(
        "{:<40} {:>14.2} {:>16.2}   ← repeat-last baseline",
        "(no forecasting)",
        baseline(&burst_fates),
        baseline(&sustained_fates)
    );
    for (name, cfg, levels) in &variants {
        println!(
            "{:<40} {:>14.2} {:>16.2}",
            name,
            eval(cfg, *levels, &burst_fates),
            eval(cfg, *levels, &sustained_fates)
        );
    }
    println!("\nreading: every row above the full configuration that grows in either");
    println!("column shows what that safeguard buys; 'paper protocol' is eq. 3 verbatim.");
}
