//! Throughput of the `foreco-serve` shard pool: session-ticks per second
//! swept over shard count × session count, written to `BENCH_serve.json`
//! so CI can track the service's perf trajectory.
//!
//! One session-tick = one full hosted loop step (reference driver +
//! impaired driver + recovery engine), so ticks/sec × 1/50 Hz is the
//! number of real-time 50 Hz loops one process could sustain.
//!
//! Knobs: `FORECO_SERVE_SESSIONS` (default 1024),
//! `FORECO_SERVE_CYCLES` (replay length, default 1),
//! `FORECO_SERVE_SHARDS` (comma list, default `1,2,4,8`),
//! `FORECO_SERVE_OUT` (output path, default `BENCH_serve.json`).

use foreco_bench::{banner, env_knob, Fixture};
use foreco_core::RecoveryConfig;
use foreco_serve::{
    ChannelSpec, RecoverySpec, Service, ServiceConfig, SessionSpec, SharedForecaster, SourceSpec,
};
use foreco_teleop::{Dataset, Skill};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    shards: usize,
    sessions: u64,
    total_ticks: u64,
    total_misses: u64,
    wall_s: f64,
    ticks_per_sec: f64,
    speedup_vs_1_shard: f64,
    rmse_p50_mm: f64,
    rmse_p99_mm: f64,
}

#[derive(Serialize)]
struct Output {
    bench: String,
    sessions: u64,
    ticks_per_session: usize,
    forecaster: String,
    rows: Vec<Row>,
}

fn main() {
    // env_knob rejects zero, which would otherwise panic summary()
    // on an empty registry.
    let sessions = env_knob("FORECO_SERVE_SESSIONS", 1024) as u64;
    let cycles = env_knob("FORECO_SERVE_CYCLES", 1);
    let mut shard_counts: Vec<usize> = std::env::var("FORECO_SERVE_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    if shard_counts.is_empty() {
        eprintln!("FORECO_SERVE_SHARDS parsed to nothing; using 1,2,4,8");
        shard_counts = vec![1, 2, 4, 8];
    }
    let out_path =
        std::env::var("FORECO_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    banner(
        &format!("serve_throughput — {sessions} sessions over shards {shard_counts:?}"),
        "service-scale extension of §V (one recovery loop → thousands)",
    );

    let fx = Fixture::build();
    let forecaster = SharedForecaster::new(fx.var.clone());
    let replay = Arc::new(Dataset::record(Skill::Inexperienced, cycles, 0.02, 8).commands);
    println!(
        "workload: {} commands/session, {} sessions, forecaster {}\n",
        replay.len(),
        sessions,
        forecaster.name()
    );
    println!(
        "{:>7} {:>12} {:>10} {:>14} {:>9} {:>10} {:>10}",
        "shards", "ticks", "wall [s]", "ticks/s", "speedup", "p50 [mm]", "p99 [mm]"
    );

    let specs = |n: u64| -> Vec<SessionSpec> {
        (0..n)
            .map(|id| {
                SessionSpec::new(
                    id,
                    SourceSpec::Replayed(Arc::clone(&replay)),
                    ChannelSpec::ControlledLoss {
                        burst_len: 6,
                        burst_prob: 0.01,
                        seed: 40_000 + id,
                    },
                    RecoverySpec::FoReCo {
                        forecaster: forecaster.clone(),
                        config: RecoveryConfig::for_model(&fx.model),
                    },
                )
            })
            .collect()
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut base_rate = 0.0f64;
    for &shards in &shard_counts {
        let service = Service::spawn(ServiceConfig::with_shards(shards));
        let started = Instant::now();
        let registry = service.run_to_completion(specs(sessions));
        let wall_s = started.elapsed().as_secs_f64();
        let summary = registry.summary();
        let ticks_per_sec = summary.total_ticks as f64 / wall_s;
        if rows.is_empty() {
            base_rate = ticks_per_sec;
        }
        let speedup = ticks_per_sec / base_rate;
        println!(
            "{:>7} {:>12} {:>10.3} {:>14.0} {:>8.2}x {:>10.2} {:>10.2}",
            shards,
            summary.total_ticks,
            wall_s,
            ticks_per_sec,
            speedup,
            summary.rmse_mm.p50,
            summary.rmse_mm.p99
        );
        rows.push(Row {
            shards,
            sessions,
            total_ticks: summary.total_ticks,
            total_misses: summary.total_misses,
            wall_s,
            ticks_per_sec,
            speedup_vs_1_shard: speedup,
            rmse_p50_mm: summary.rmse_mm.p50,
            rmse_p99_mm: summary.rmse_mm.p99,
        });
    }

    let output = Output {
        bench: "serve_throughput".to_string(),
        sessions,
        ticks_per_session: replay.len(),
        forecaster: forecaster.name().to_string(),
        rows,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialise bench output");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("\nwrote {out_path}");
}
