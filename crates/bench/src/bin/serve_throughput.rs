//! Throughput of the `foreco-serve` shard pool: session-ticks per second
//! swept over shard count × session count, plus the **idle-heavy**
//! scenario that pins the event-driven scheduler's scaling claim —
//! written to `BENCH_serve.json` so CI can track the service's perf
//! trajectory.
//!
//! One session-tick = one full hosted loop step (reference driver +
//! impaired driver + recovery engine), so ticks/sec × 1/50 Hz is the
//! number of real-time 50 Hz loops one process could sustain.
//!
//! The idle-heavy scenario models the production fleet shape: thousands
//! of streamed sessions, a few percent of them carrying live traffic,
//! the rest silent. Under the event-driven scheduler the silent ones
//! park at their idle fixed point, so `wakeups_per_tick` (mean session
//! advances per scheduling pass) must track the *active* population —
//! the eager sweep's is pinned at the total. CI asserts the event-mode
//! number against `FORECO_SERVE_WAKEUP_BUDGET` to catch regressions
//! back to O(total-sessions) sweeps.
//!
//! The **ingress** scenario measures the `foreco-net` gateway: the same
//! teleop frames pushed through the full wire pipeline (codec → reorder
//! → gated injection) over the in-process loopback transport vs real
//! localhost UDP, reported as datagrams/sec.
//!
//! The **fleet_soak** scenario churns thousands of short-lived sessions
//! through open → replay → (periodic) snapshot → close on worker
//! threads while a scraper hits the Prometheus metrics endpoint and a
//! poll-mode subscriber drains the fleet event feed — the
//! observability plane exercised *during* churn, with scrape latency
//! percentiles and event delivery/drop counts recorded.
//!
//! The **engine_hot_path** scenario profiles one hosted session's
//! steady-state tick (source → engine → both PID drivers → metrics) in
//! isolation: per-tick wall nanoseconds and — through a counting global
//! allocator — heap allocations per tick, under the replay's hit/miss
//! mix. Since the flat-ring + `forecast_into` rework the allocs/tick
//! figure must be ~0 (the `hot_path_allocs` test pins exactly 0 per
//! steady tick); this row gives the perf trajectory a trend line.
//!
//! The **calibration** scenario runs a frozen pure-f64 arithmetic
//! kernel (see [`calibration_run`]) and reports its iterations/sec —
//! a measure of *this* container's scalar f64 speed, taken in the same
//! process as every other scenario. Dividing engine throughput by it
//! yields a dimensionless ratio that is comparable across machines,
//! which is what the CI perf gate asserts (`FORECO_ENGINE_TICKS_RATIO`)
//! instead of an absolute ticks/s constant that only reproduces on the
//! container it was recorded on.
//!
//! The **batched** scenario pits the per-session scalar miss path
//! (`tick_into(None)`, one virtual dispatch per engine) against the
//! batched lane in the layout the adaptive plan
//! ([`foreco_forecast::plan_layout`]) picks for each family at the
//! fleet width (gather windows → one lane sweep → hand each engine its
//! row via `tick_miss_prepared`) across a fleet of engines sharing one
//! forecaster, asserts the outputs are bit-identical, and records
//! `batched_speedup_vs_scalar` per family. Families whose plan is
//! Scalar (cheap kernels — MA, Holt) are never gathered in the serve
//! planner, so their "batched" column re-times the scalar path: the
//! recorded speedup is the noise floor the "throughput unchanged"
//! claim is judged against.
//!
//! The **lane_sweep** scenario validates the layout thresholds behind
//! that plan: for each family it forces member-major and slot-major
//! lanes across widths 1–1024 (straddling `SLOT_MAJOR_MIN_WIDTH`
//! with width−1/width/width+1 cells) against a scalar reference fleet,
//! records per-width speedups plus the layout the plan would choose,
//! and exits non-zero if any layout moves a single bit.
//!
//! Knobs: `FORECO_SERVE_SESSIONS` (default 1024),
//! `FORECO_SERVE_CYCLES` (replay length, default 1),
//! `FORECO_SERVE_SHARDS` (comma list, default `1,2,4,8`),
//! `FORECO_SERVE_IDLE_SESSIONS` (default 4096),
//! `FORECO_SERVE_IDLE_ACTIVE_PCT` (default 2),
//! `FORECO_SERVE_IDLE_ROUNDS` (hot-session inject rounds, default 400),
//! `FORECO_SERVE_WAKEUP_BUDGET` (optional hard ceiling on idle-heavy
//! event-mode wakeups/tick; breach exits non-zero),
//! `FORECO_ENGINE_TICKS_RATIO` (optional hard floor on 1-shard
//! `ticks_per_sec` ÷ calibration iterations/sec; shortfall exits
//! non-zero — the CI regression gate, set to committed-baseline-ratio
//! × 0.9; recalibration rule in ROADMAP),
//! `FORECO_SERVE_BATCH_SESSIONS` (batched-lane fleet size, default 256),
//! `FORECO_SERVE_BATCH_ROUNDS` (measured miss rounds, default 400),
//! `FORECO_SERVE_SWEEP_WIDTHS` (lane_sweep width list, default
//! `1,2,4,8,16,31,32,33,64,128,256,512,1024`),
//! `FORECO_SERVE_SWEEP_TICKS` (target miss ticks per lane_sweep cell,
//! default 16384 — rounds scale inversely with width),
//! `FORECO_SERVE_HOTPATH_TICKS` (measured hot-path ticks, default 200000),
//! `FORECO_SERVE_INGRESS_SESSIONS` (default 16),
//! `FORECO_SERVE_INGRESS_FRAMES` (per-session datagrams, default 1000),
//! `FORECO_SERVE_SOAK_SESSIONS` (fleet-soak churn size, default 10000),
//! `FORECO_SERVE_SOAK_TICKS` (fleet-soak ticks/session, default 32),
//! `FORECO_SERVE_DEDUP_SESSIONS` (shared-storage fleet size, default 1024),
//! `FORECO_SERVE_DEDUP_CYCLES` (shared trace length, default 4),
//! `FORECO_SERVE_OUT` (output path, default `BENCH_serve.json`).
//!
//! The **bytes_per_session** scenario measures the `foreco-store` dedup
//! win: a fleet of scripted sessions all replaying one trace, reported
//! as resident source bytes/session (private copies vs store claims)
//! and bulk checkpoint bytes/session (self-contained snapshots vs one
//! deduplicated `FleetArchive`), plus the proof that sessions adopted
//! out of the archive into a fresh service finish **bit-identically**
//! to their donors (divergence exits non-zero).

use foreco_bench::{banner, env_knob, Fixture};
use foreco_core::RecoveryConfig;
use foreco_forecast::{CostClass, Holt, KalmanCv, LaneLayout, MovingAverage};
use foreco_serve::{
    Advance, BalancerConfig, ChannelSpec, EventWait, RecoverySpec, Scheduler, Service,
    ServiceConfig, Session, SessionSnapshot, SessionSpec, SharedForecaster, SourceSpec,
};
use foreco_teleop::{Dataset, Skill};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// System allocator with per-thread allocation and net-byte counters,
/// so the hot-path scenario can report allocs/tick alongside ns/tick
/// and the dedup scenario can report resident source bytes.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<i64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Net heap bytes allocated by the calling thread (allocs − frees).
fn thread_bytes() -> i64 {
    THREAD_BYTES.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + layout.size() as i64));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + layout.size() as i64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + new_size as i64 - layout.size() as i64));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() - layout.size() as i64));
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Row {
    shards: usize,
    sessions: u64,
    total_ticks: u64,
    total_misses: u64,
    wall_s: f64,
    ticks_per_sec: f64,
    speedup_vs_1_shard: f64,
    rmse_p50_mm: f64,
    rmse_p99_mm: f64,
}

#[derive(Serialize)]
struct IdleRow {
    scheduler: String,
    shards: usize,
    sessions: u64,
    active_sessions: u64,
    inject_rounds: usize,
    wall_s: f64,
    passes: u64,
    wakeups: u64,
    /// Mean session advances per scheduling pass — the scaling metric.
    wakeups_per_tick: f64,
    /// `wakeups_per_tick / sessions`: fraction of the fleet awake on an
    /// average pass.
    runnable_ratio: f64,
    timer_wakeups: u64,
    traffic_wakeups: u64,
    balancer_migrations: u64,
    total_session_ticks: u64,
}

#[derive(Serialize)]
struct IngressRow {
    transport: String,
    sessions: u64,
    frames_per_session: usize,
    datagrams: u64,
    wall_s: f64,
    datagrams_per_sec: f64,
    delivered: u64,
    lost: u64,
}

/// The fleet-soak scenario: thousands of sessions churned through
/// open → replay → (periodic) snapshot → close while the metrics
/// endpoint is scraped live and an event subscriber drinks the fleet's
/// lifecycle — the observability plane measured *under* load, not
/// after it.
#[derive(Serialize)]
struct FleetSoakRow {
    sessions: u64,
    shards: usize,
    ticks_per_session: usize,
    wall_s: f64,
    /// Session-ticks confirmed by close reports.
    session_ticks: u64,
    ticks_per_sec: f64,
    /// Mid-churn checkpoints taken (every 16th session).
    snapshots: u64,
    /// Prometheus scrapes completed during the churn.
    scrapes: u64,
    scrape_p50_us: f64,
    scrape_p99_us: f64,
    scrape_max_us: f64,
    /// Fleet events the live subscriber received.
    events_delivered: u64,
    /// Events shed by the subscriber's bounded queue (drop-oldest).
    events_dropped: u64,
}

#[derive(Serialize)]
struct HotPathRow {
    forecaster: String,
    /// Measured steady-state ticks (warmup excluded).
    ticks: u64,
    /// Misses across the full sessions (the hit/miss mix context).
    misses: u64,
    miss_fraction: f64,
    wall_s: f64,
    ns_per_tick: f64,
    ticks_per_sec: f64,
    /// Heap allocations per measured tick (counting allocator) — ~0
    /// since the flat-ring engine rework.
    allocs_per_tick: f64,
}

#[derive(Serialize)]
struct BytesRow {
    sessions: u64,
    trace_commands: usize,
    /// Net heap bytes to hold the fleet's command sources with one
    /// private trace copy per session (the pre-store layout).
    naive_source_bytes: i64,
    /// Same fleet's sources as store claims on one resident trace.
    stored_source_bytes: i64,
    naive_source_bytes_per_session: f64,
    stored_source_bytes_per_session: f64,
    resident_reduction: f64,
    /// Σ of per-session self-contained snapshot bytes (each one
    /// materialising the full trace) — the pre-archive checkpoint cost.
    inline_archive_bytes: u64,
    /// One `FleetArchive`: the trace once, sessions by reference.
    dedup_archive_bytes: u64,
    inline_archive_bytes_per_session: f64,
    dedup_archive_bytes_per_session: f64,
    archive_reduction: f64,
    /// Every adopted session's final report matched its donor bit for
    /// bit (ticks, misses, RMSE bits, max-deviation bits).
    restored_bit_identical: bool,
}

/// The snapshot-churn scenario row: encode+decode throughput and
/// bytes/session for the same donor fleet through both live codecs —
/// the legacy JSON v2 document and the v3 binary frame (shard-style
/// reusable scratch). The ratio is the number the v3 rework claims.
#[derive(Serialize)]
struct SnapshotChurnRow {
    sessions: u64,
    /// Encode+decode passes over the whole donor fleet per codec.
    rounds: usize,
    json_wall_s: f64,
    json_sessions_per_sec: f64,
    json_bytes_per_session: f64,
    binary_wall_s: f64,
    binary_sessions_per_sec: f64,
    binary_bytes_per_session: f64,
    /// Binary sessions/s ÷ JSON sessions/s over the same donors.
    codec_speedup: f64,
    /// JSON bytes/session ÷ binary bytes/session.
    bytes_reduction: f64,
    /// Every binary round-trip reproduced its donor exactly (struct
    /// equality — every f64 bit), checked outside the timed loops.
    decode_exact: bool,
}

#[derive(Serialize)]
struct CalibrationRow {
    /// Fixed iteration count of the frozen kernel.
    iterations: u64,
    wall_s: f64,
    /// This container's scalar-f64 speed — the denominator of the
    /// relative perf gate.
    iterations_per_sec: f64,
}

#[derive(Serialize)]
struct BatchedRow {
    forecaster: String,
    /// Engines sharing the lane's forecaster.
    lane_sessions: usize,
    /// The layout the adaptive plan picked for this family at this
    /// width ("Scalar" = the serve planner never gathers the family).
    layout: String,
    /// Measured miss ticks per path (rounds × lane_sessions).
    ticks: u64,
    scalar_ns_per_tick: f64,
    batched_ns_per_tick: f64,
    /// Scalar ns/tick ÷ batched ns/tick over the same miss ticks.
    batched_speedup_vs_scalar: f64,
    /// Every miss tick's forecast matched the scalar path bit for bit.
    bit_identical: bool,
}

#[derive(Serialize)]
struct LaneSweepRow {
    forecaster: String,
    /// Lane width (engines sharing the forecaster).
    width: usize,
    /// The layout this row forced and measured.
    layout: String,
    /// The layout [`foreco_forecast::plan_layout`] would choose at
    /// this width — the threshold this sweep exists to validate.
    chosen: String,
    /// Measured miss ticks per path (rounds × width).
    ticks: u64,
    scalar_ns_per_tick: f64,
    layout_ns_per_tick: f64,
    /// Scalar ns/tick ÷ forced-layout ns/tick.
    speedup_vs_scalar: f64,
    /// Every miss tick's forecast matched the scalar path bit for bit.
    bit_identical: bool,
}

#[derive(Serialize)]
struct Output {
    bench: String,
    sessions: u64,
    ticks_per_session: usize,
    forecaster: String,
    /// `std::thread::available_parallelism()` in the measuring process
    /// — recorded so shard-scaling rows can be read against how many
    /// hardware threads the container actually had.
    available_parallelism: usize,
    /// The shard counts the scaling sweep ran (`rows` has one entry
    /// per count).
    shard_counts: Vec<usize>,
    calibration: CalibrationRow,
    /// 1-shard `ticks_per_sec` ÷ calibration iterations/sec — the
    /// dimensionless number the CI gate bounds.
    engine_vs_calibration_ratio: f64,
    rows: Vec<Row>,
    engine_hot_path: Vec<HotPathRow>,
    batched: Vec<BatchedRow>,
    lane_sweep: Vec<LaneSweepRow>,
    idle_heavy: Vec<IdleRow>,
    ingress: Vec<IngressRow>,
    fleet_soak: FleetSoakRow,
    bytes_per_session: BytesRow,
    snapshot_churn: SnapshotChurnRow,
}

/// The frozen calibration kernel: a fixed-length pure-f64 arithmetic
/// chain over a SplitMix64 stream. Its iterations/sec measures the
/// container's scalar floating-point speed with zero dependence on any
/// foreco crate, so `engine ticks/s ÷ calibration iters/s` is a
/// dimensionless ratio that transfers across machines — the basis of
/// the CI perf gate.
///
/// **FROZEN — never modify this function.** Any change to the
/// arithmetic (or the iteration count passed by `main`) silently
/// rescales every recorded ratio; the gate must then be recalibrated
/// (see ROADMAP "CI perf gates").
fn calibration_run(iterations: u64) -> CalibrationRow {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut acc = 1.0f64;
    let t0 = Instant::now();
    for _ in 0..iterations {
        // ~the engine's mix: a multiply-add, a divide, a square root.
        let x = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        acc = (acc * 0.999_999 + x).sqrt() + x / (1.0 + acc);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    CalibrationRow {
        iterations,
        wall_s,
        iterations_per_sec: iterations as f64 / wall_s,
    }
}

/// One lane-vs-scalar measurement: two identically-warmed fleets of
/// recovery engines sharing one forecaster march through the same
/// deliver/miss cadence; the miss ticks are timed per path (scalar
/// `tick_into(None)` vs lane gather → one `run_layout` sweep →
/// `tick_miss_prepared`) and every forecast is compared bit for bit.
/// With `LaneLayout::Scalar` the second fleet re-times the scalar path
/// with no gather at all — exactly what the serve planner does with
/// cheap families, so the recorded "speedup" is the noise floor.
fn lane_measure(
    forecaster: &SharedForecaster,
    fx: &Fixture,
    replay: &[Vec<f64>],
    lane_sessions: usize,
    rounds: usize,
    layout: foreco_forecast::LaneLayout,
) -> (u64, f64, f64, bool) {
    use foreco_core::RecoveryEngine;
    use foreco_forecast::{BatchLane, ForecastScratch, Forecaster, LaneLayout};

    let dof = fx.model.dof();
    let build_fleet = || -> Vec<RecoveryEngine> {
        (0..lane_sessions)
            .map(|_| {
                RecoveryEngine::new(
                    Box::new(forecaster.clone()),
                    RecoveryConfig::for_model(&fx.model),
                    fx.model.clamp(&replay[0]),
                )
            })
            .collect()
    };
    let mut scalar = build_fleet();
    let mut batched = build_fleet();
    let mut out_a = vec![0.0f64; dof];
    let mut out_b = vec![0.0f64; dof];
    // Warm both fleets past the forecast horizon on real deliveries.
    let warmup = forecaster.history_len() + 2;
    for j in 0..warmup {
        let cmd = fx.model.clamp(&replay[j % replay.len()]);
        for e in scalar.iter_mut().chain(batched.iter_mut()) {
            e.tick_into(Some(&cmd), &mut out_a);
        }
    }

    let mut lane = BatchLane::new(forecaster.shared());
    let mut scratch = ForecastScratch::new();
    let mut bit_identical = true;
    let mut scalar_wall = Duration::ZERO;
    let mut batched_wall = Duration::ZERO;
    let mut mismatch_scratch = vec![0u64; lane_sessions * dof];
    for round in 0..rounds {
        // Timed miss tick, scalar path: one virtual dispatch per engine.
        let t0 = Instant::now();
        for (i, e) in scalar.iter_mut().enumerate() {
            e.tick_into(None, &mut out_a);
            for (slot, v) in mismatch_scratch[i * dof..(i + 1) * dof]
                .iter_mut()
                .zip(&out_a)
            {
                *slot = v.to_bits();
            }
        }
        scalar_wall += t0.elapsed();

        // Timed miss tick, lane path. Scalar layout = no gather: the
        // fleet keeps its per-engine dispatch, as in the serve planner.
        let t0 = Instant::now();
        match layout {
            LaneLayout::Scalar => {
                for (i, e) in batched.iter_mut().enumerate() {
                    e.tick_into(None, &mut out_b);
                    bit_identical &= mismatch_scratch[i * dof..(i + 1) * dof]
                        .iter()
                        .zip(&out_b)
                        .all(|(&bits, v)| bits == v.to_bits());
                }
            }
            _ => {
                lane.clear();
                for e in &batched {
                    lane.push_window(&e.history_view());
                }
                lane.run_layout(layout, &mut scratch);
                for (i, e) in batched.iter_mut().enumerate() {
                    e.tick_miss_prepared(lane.result(i), &mut out_b);
                    bit_identical &= mismatch_scratch[i * dof..(i + 1) * dof]
                        .iter()
                        .zip(&out_b)
                        .all(|(&bits, v)| bits == v.to_bits());
                }
            }
        }
        batched_wall += t0.elapsed();

        // Untimed delivery keeps both fleets under the forecast horizon.
        let cmd = fx.model.clamp(&replay[round % replay.len()]);
        for e in scalar.iter_mut().chain(batched.iter_mut()) {
            e.tick_into(Some(&cmd), &mut out_a);
        }
    }
    let ticks = (rounds * lane_sessions) as u64;
    let scalar_ns = scalar_wall.as_secs_f64() * 1e9 / ticks as f64;
    let batched_ns = batched_wall.as_secs_f64() * 1e9 / ticks as f64;
    (ticks, scalar_ns, batched_ns, bit_identical)
}

/// The batched scenario row for one family: measures the layout the
/// adaptive plan would actually run at this fleet width.
fn batched_run(
    name: &str,
    forecaster: SharedForecaster,
    fx: &Fixture,
    replay: &[Vec<f64>],
    lane_sessions: usize,
    rounds: usize,
) -> BatchedRow {
    use foreco_forecast::{plan_layout, Forecaster};
    let layout = plan_layout(forecaster.cost_class(), lane_sessions);
    let (ticks, scalar_ns, batched_ns, bit_identical) =
        lane_measure(&forecaster, fx, replay, lane_sessions, rounds, layout);
    BatchedRow {
        forecaster: name.to_string(),
        lane_sessions,
        layout: format!("{layout:?}"),
        ticks,
        scalar_ns_per_tick: scalar_ns,
        batched_ns_per_tick: batched_ns,
        batched_speedup_vs_scalar: scalar_ns / batched_ns,
        bit_identical,
    }
}

/// One lane_sweep cell: a forced layout at a fixed width, plus the
/// layout the plan would have chosen there.
fn lane_sweep_run(
    name: &str,
    forecaster: &SharedForecaster,
    fx: &Fixture,
    replay: &[Vec<f64>],
    width: usize,
    rounds: usize,
    layout: foreco_forecast::LaneLayout,
) -> LaneSweepRow {
    use foreco_forecast::{plan_layout, Forecaster};
    let chosen = plan_layout(forecaster.cost_class(), width);
    let (ticks, scalar_ns, layout_ns, bit_identical) =
        lane_measure(forecaster, fx, replay, width, rounds, layout);
    LaneSweepRow {
        forecaster: name.to_string(),
        width,
        layout: format!("{layout:?}"),
        chosen: format!("{chosen:?}"),
        ticks,
        scalar_ns_per_tick: scalar_ns,
        layout_ns_per_tick: layout_ns,
        speedup_vs_scalar: scalar_ns / layout_ns,
        bit_identical,
    }
}

/// Profiles one hosted session's steady-state tick: ns/tick and
/// allocs/tick over `target_ticks` measured advances (replay warmup and
/// session open/teardown excluded from both counters).
fn engine_hot_path_run(
    name: &str,
    forecaster: SharedForecaster,
    fx: &Fixture,
    replay: &Arc<Vec<Vec<f64>>>,
    target_ticks: u64,
) -> HotPathRow {
    let len = replay.len() as u64;
    let warmup = len / 8;
    let per_rep = len - warmup - 1;
    let reps = target_ticks.div_ceil(per_rep).max(1);
    let (mut ticks, mut misses, mut allocs) = (0u64, 0u64, 0u64);
    let mut wall = Duration::ZERO;
    for rep in 0..reps {
        let spec = SessionSpec::new(
            rep,
            SourceSpec::Replayed(Arc::clone(replay)),
            ChannelSpec::ControlledLoss {
                burst_len: 6,
                burst_prob: 0.01,
                seed: 70_000 + rep,
            },
            RecoverySpec::FoReCo {
                forecaster: forecaster.clone(),
                config: RecoveryConfig::for_model(&fx.model),
            },
        );
        let mut session = Session::open(&spec, &fx.model);
        for _ in 0..warmup {
            session.advance();
        }
        let a0 = thread_allocs();
        let t0 = Instant::now();
        for _ in 0..per_rep {
            session.advance();
        }
        wall += t0.elapsed();
        allocs += thread_allocs() - a0;
        ticks += per_rep;
        // Drain the tail to the report for the miss-mix context.
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };
        misses += report.misses as u64;
    }
    let wall_s = wall.as_secs_f64();
    HotPathRow {
        forecaster: name.to_string(),
        ticks,
        misses,
        miss_fraction: misses as f64 / (reps * len) as f64,
        wall_s,
        ns_per_tick: wall_s * 1e9 / ticks as f64,
        ticks_per_sec: ticks as f64 / wall_s,
        allocs_per_tick: allocs as f64 / ticks as f64,
    }
}

/// Runs the idle-heavy fleet under one scheduler and measures the
/// wakeup profile.
fn idle_heavy_run(
    scheduler: Scheduler,
    shards: usize,
    sessions: u64,
    active: u64,
    rounds: usize,
    fx: &Fixture,
    forecaster: &SharedForecaster,
) -> IdleRow {
    let config = ServiceConfig {
        shards,
        scheduler,
        control_capacity: 4096,
        // Headroom for every session's Opened + Completed plus drop
        // notifications, so nothing deadlocks on a full event buffer.
        event_capacity: sessions as usize * 3 + 1024,
        balancer: Some(BalancerConfig::default()),
        ..Default::default()
    };
    let service = Service::spawn(config);
    let handle = service.handle();
    let home = fx.model.home();
    let started = Instant::now();
    for id in 0..sessions {
        handle
            .open(SessionSpec::new(
                id,
                SourceSpec::Streamed {
                    initial: home.clone(),
                    inbox_capacity: 8,
                },
                ChannelSpec::ControlledLoss {
                    burst_len: 5,
                    burst_prob: 0.02,
                    seed: 60_000 + id,
                },
                RecoverySpec::FoReCo {
                    forecaster: forecaster.clone(),
                    config: RecoveryConfig::for_model(&fx.model),
                },
            ))
            .expect("open session");
    }
    // Settle phase: a freshly opened silent fleet runs eagerly through
    // forecast horizon + PID settling. Wait for it to reach steady
    // state before measuring — parked under the event scheduler, simply
    // ticking under the eager one.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let loads = handle.shard_loads();
        let settled = match scheduler {
            Scheduler::EventDriven => loads.iter().map(|l| l.parked).sum::<u64>() == sessions,
            Scheduler::Eager => loads.iter().map(|l| l.passes).sum::<u64>() > 200,
        };
        if settled {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never settled: {loads:?}");
        while let EventWait::Event(_) = service.next_event_timeout(Duration::ZERO) {}
        std::thread::sleep(Duration::from_millis(1));
    }
    let baseline = handle.shard_loads();

    // Hot phase: the active set gets a command per round (~1 kHz), the
    // rest stay silent; the metric is how many sessions the pool
    // touches per pass while most of the fleet is idle.
    let mut drained = 0u64;
    for round in 0..rounds {
        for id in 0..active {
            let mut cmd = home.clone();
            let joint = round % home.len();
            cmd[joint] += 0.01 * ((round % 5) as f64 - 2.0);
            let _ = handle.inject(id, cmd); // backpressure = loss, by design
        }
        // Keep the event buffer flowing (Opened / CommandDropped).
        while let EventWait::Event(e) = service.next_event_timeout(Duration::ZERO) {
            if matches!(e, foreco_serve::SessionEvent::Completed { .. }) {
                drained += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Sample before teardown: the close wave wakes the whole parked
    // fleet and would smear the hot-phase wakeup profile. Hot-phase
    // deltas against the post-settle baseline are the honest numbers.
    let sample = handle.shard_loads();
    let wall_s = started.elapsed().as_secs_f64();

    // Tear down: close everyone (waking the parked fleet), drain all
    // reports.
    let mut total_session_ticks = 0u64;
    let mut completed = drained;
    for id in 0..sessions {
        handle.close(id).expect("close session");
        while let EventWait::Event(e) = service.next_event_timeout(Duration::ZERO) {
            if let foreco_serve::SessionEvent::Completed { report, .. } = e {
                total_session_ticks += report.ticks;
                completed += 1;
            }
        }
    }
    while completed < sessions {
        match service.next_event() {
            Some(foreco_serve::SessionEvent::Completed { report, .. }) => {
                total_session_ticks += report.ticks;
                completed += 1;
            }
            Some(_) => {}
            None => panic!("service died before every report"),
        }
    }
    service.join();

    let delta = |f: fn(&foreco_serve::ShardLoadSummary) -> u64| -> u64 {
        sample.iter().zip(&baseline).map(|(s, b)| f(s) - f(b)).sum()
    };
    let passes = delta(|l| l.passes);
    let wakeups = delta(|l| l.wakeups);
    // Sum of per-shard advances-per-pass over the hot phase: "how many
    // sessions does the pool touch per tick slot" — directly comparable
    // to the total session count (where the eager sweep pins it). A
    // shard that ran no passes (fully parked) contributes zero.
    let wakeups_per_tick: f64 = sample
        .iter()
        .zip(&baseline)
        .map(|(s, b)| {
            let passes = s.passes - b.passes;
            if passes == 0 {
                0.0
            } else {
                (s.wakeups - b.wakeups) as f64 / passes as f64
            }
        })
        .sum();
    IdleRow {
        scheduler: format!("{scheduler:?}"),
        shards,
        sessions,
        active_sessions: active,
        inject_rounds: rounds,
        wall_s,
        passes,
        wakeups,
        wakeups_per_tick,
        runnable_ratio: wakeups_per_tick / sessions as f64,
        timer_wakeups: delta(|l| l.timer_wakeups),
        traffic_wakeups: delta(|l| l.traffic_wakeups),
        balancer_migrations: delta(|l| l.migrated_out),
        total_session_ticks,
    }
}

/// Pushes `frames` datagrams per session through the gateway on one
/// transport and measures the wire pipeline's throughput.
fn ingress_run(transport: &str, shards: usize, sessions: u64, trace: &[Vec<f64>]) -> IngressRow {
    use foreco_net::{ClientConfig, Gateway, GatewayConfig, NetClient, TcpControl, UdpWire};

    let gateway = Gateway::spawn(ServiceConfig::with_shards(shards), GatewayConfig::default())
        .expect("spawn gateway");
    let cfg = ClientConfig {
        window: 64,
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let (mut delivered, mut lost) = (0u64, 0u64);
    for id in 0..sessions {
        let ingress = match transport {
            "loopback" => {
                let (data, control) = gateway.loopback();
                let mut client = NetClient::new(id, data, control);
                client.open(trace[0].clone(), trace.len()).expect("open");
                client.replay(trace, 0, &cfg).expect("replay");
                client.close().expect("close").1
            }
            _ => {
                let data = UdpWire::connect(gateway.udp_addr()).expect("udp");
                let control = TcpControl::connect(gateway.tcp_addr()).expect("tcp");
                let mut client = NetClient::new(id, data, control);
                client.open(trace[0].clone(), trace.len()).expect("open");
                client.replay(trace, 0, &cfg).expect("replay");
                client.close().expect("close").1
            }
        };
        delivered += ingress.delivered;
        lost += ingress.lost;
    }
    let wall_s = started.elapsed().as_secs_f64();
    gateway.shutdown();
    let datagrams = sessions * trace.len() as u64;
    IngressRow {
        transport: transport.to_string(),
        sessions,
        frames_per_session: trace.len(),
        datagrams,
        wall_s,
        datagrams_per_sec: datagrams as f64 / wall_s,
        delivered,
        lost,
    }
}

/// Churns `sessions` short-lived sessions through the gateway on
/// worker threads while a scraper hammers the Prometheus endpoint and
/// a poll-mode subscriber drains the fleet event feed — the
/// observability soak. Loopback transport: the point is control-plane
/// behaviour under churn, not socket throughput (the ingress scenario
/// owns that).
fn fleet_soak_run(shards: usize, sessions: u64, ticks: usize) -> FleetSoakRow {
    use foreco_net::{ClientConfig, ForecoClient, Gateway, GatewayConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    let gateway = Gateway::spawn(ServiceConfig::with_shards(shards), GatewayConfig::default())
        .expect("spawn soak gateway");
    let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 404)
        .head(ticks)
        .commands;
    let cfg = ClientConfig {
        window: 64,
        ..ClientConfig::default()
    };
    let workers = 8u64.min(sessions.max(1));
    let stop = AtomicBool::new(false);
    let started = Instant::now();

    let (wall_s, session_ticks, snapshots, mut scrape_us, events_delivered, events_dropped) =
        std::thread::scope(|s| {
            let worker_handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let (gateway, trace, cfg) = (&gateway, &trace, &cfg);
                    s.spawn(move || {
                        let (mut ticks_done, mut snaps) = (0u64, 0u64);
                        let mut id = worker;
                        while id < sessions {
                            let mut client = ForecoClient::loopback(gateway, id);
                            client
                                .open(trace[0].clone(), trace.len().max(16))
                                .expect("soak open");
                            client.replay(trace, 0, cfg).expect("soak replay");
                            if id % 16 == 0 {
                                let snapshot = client.snapshot().expect("soak snapshot");
                                assert!(!snapshot.is_empty());
                                snaps += 1;
                            }
                            let (report, _) = client.close().expect("soak close");
                            ticks_done += report.ticks;
                            id += workers;
                        }
                        (ticks_done, snaps)
                    })
                })
                .collect();

            // Live scrapes against the churn, latency recorded per scrape.
            let scraper = s.spawn(|| {
                let mut client = ForecoClient::loopback(&gateway, u64::MAX);
                let mut latencies_us = Vec::new();
                loop {
                    let done = stop.load(Ordering::Relaxed);
                    let begun = Instant::now();
                    let body = client.metrics().expect("soak scrape");
                    latencies_us.push(begun.elapsed().as_secs_f64() * 1e6);
                    assert!(body.contains("foreco_ticks_total"), "scrape body sane");
                    if done {
                        return latencies_us;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });

            // A poll-mode subscriber drinking the fleet's lifecycle.
            let subscriber = s.spawn(|| {
                let mut client = ForecoClient::loopback(&gateway, u64::MAX - 1);
                let subscription = client.subscribe().expect("soak subscribe");
                let (mut delivered, mut dropped) = (0u64, 0u64);
                loop {
                    let done = stop.load(Ordering::Relaxed);
                    let batch = client.poll_events(subscription, 4096).expect("soak poll");
                    delivered += batch.events.len() as u64;
                    dropped += batch.dropped;
                    if batch.events.is_empty() {
                        if done {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                client.unsubscribe(subscription).expect("soak unsubscribe");
                (delivered, dropped)
            });

            let (mut session_ticks, mut snapshots) = (0u64, 0u64);
            for handle in worker_handles {
                let (ticks_done, snaps) = handle.join().expect("soak worker");
                session_ticks += ticks_done;
                snapshots += snaps;
            }
            let wall_s = started.elapsed().as_secs_f64();
            stop.store(true, Ordering::Relaxed);
            let scrape_us = scraper.join().expect("soak scraper");
            let (delivered, dropped) = subscriber.join().expect("soak subscriber");
            (
                wall_s,
                session_ticks,
                snapshots,
                scrape_us,
                delivered,
                dropped,
            )
        });
    gateway.shutdown();

    scrape_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let percentile = |p: f64| scrape_us[((scrape_us.len() - 1) as f64 * p) as usize];
    FleetSoakRow {
        sessions,
        shards,
        ticks_per_session: ticks,
        wall_s,
        session_ticks,
        ticks_per_sec: session_ticks as f64 / wall_s,
        snapshots,
        scrapes: scrape_us.len() as u64,
        scrape_p50_us: percentile(0.50),
        scrape_p99_us: percentile(0.99),
        scrape_max_us: *scrape_us.last().expect("at least one scrape"),
        events_delivered,
        events_dropped,
    }
}

/// The shared-storage dedup scenario: a fleet of scripted sessions all
/// replaying one teleop trace, measured three ways — resident source
/// bytes (private copies vs store claims), bulk checkpoint bytes
/// (per-session inline snapshots vs one deduplicated `FleetArchive`),
/// and the determinism proof that every session adopted out of the
/// archive into a fresh service finishes bit-identically to its donor.
fn bytes_per_session_run(fx: &Fixture, sessions: u64, cycles: usize) -> BytesRow {
    use foreco_serve::SessionEvent;
    use foreco_store::Storage;
    use std::collections::HashMap;

    let dataset = Dataset::record(Skill::Inexperienced, cycles, 0.02, 8);
    let trace_commands = dataset.commands.len();
    let forecaster = SharedForecaster::new(fx.var.clone());

    // Resident footprint, measured by the counting allocator: N private
    // copies of the trace vs N claims on one resident object.
    let naive_source_bytes = {
        let before = thread_bytes();
        let copies: Vec<SourceSpec> = (0..sessions)
            .map(|_| SourceSpec::Replayed(Arc::new(dataset.commands.clone())))
            .collect();
        let held = thread_bytes() - before;
        drop(copies);
        held
    };
    let store = Storage::new();
    let stored_source_bytes = {
        let before = thread_bytes();
        let claims: Vec<SourceSpec> = (0..sessions)
            .map(|_| SourceSpec::stored(&store, &dataset))
            .collect();
        let held = thread_bytes() - before;
        drop(claims);
        held
    };
    assert_eq!(
        store.stats().traces.objects,
        0,
        "dropping the last claim must evict the trace"
    );

    // Donor fleet, built directly: each session opens on a clone of the
    // fleet's one claim, advances to a per-session checkpoint tick, and
    // exports its fleet part. Direct construction keeps the checkpoint
    // deterministic — a live unpaced pool races a lightly-loaded fleet
    // through a whole trace in under a millisecond, so service-side bulk
    // snapshots of scripted sessions are inherently racy against
    // completion. (`snapshot_fleet` itself is pinned by service-level
    // tests on streamed sessions, which park instead of completing.)
    let fleet_claim = store.insert_trace(&dataset.commands);
    let snap_span = (trace_commands / 2).max(1) as u64;
    let spec_for = |id: u64| {
        SessionSpec::new(
            id,
            SourceSpec::Stored(fleet_claim.clone()),
            ChannelSpec::ControlledLoss {
                burst_len: 6,
                burst_prob: 0.01,
                seed: 40_000 + id,
            },
            RecoverySpec::FoReCo {
                forecaster: forecaster.clone(),
                config: RecoveryConfig::for_model(&fx.model),
            },
        )
    };
    let ids: Vec<u64> = (0..sessions).collect();
    let mut parts = Vec::with_capacity(ids.len());
    let mut donor_fleet: Vec<(u64, Session)> = Vec::with_capacity(ids.len());
    for &id in &ids {
        let mut session = Session::open(&spec_for(id), &fx.model);
        // Spread checkpoint ticks across the first half of the trace so
        // the archive holds sessions at many distinct depths.
        for _ in 0..(id * 97 + 13) % snap_span {
            session.advance();
        }
        let part = session.snapshot_for_fleet().expect("fleet part");
        parts.push(part);
        donor_fleet.push((id, session));
    }
    let archive = foreco_serve::FleetArchive::build(parts);
    assert_eq!(
        archive.len(),
        sessions as usize,
        "every session must land in the archive"
    );
    assert_eq!(archive.traces().len(), 1, "one shared trace, stored once");

    // Checkpoint cost: the archive vs the same snapshots self-contained.
    let dedup_archive_bytes = archive.to_bytes().len() as u64;
    let inline_archive_bytes: u64 = archive
        .sessions()
        .expect("archive frames decode")
        .iter()
        .map(|snap| {
            snap.materialized(&archive.traces()[0].commands)
                .expect("rehydrate inline")
                .to_bytes()
                .len() as u64
        })
        .sum();

    // Donors run out; their reports are the bit-identity reference.
    let mut donors: HashMap<u64, foreco_serve::SessionReport> = HashMap::new();
    for (id, mut session) in donor_fleet {
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break *report;
            }
        };
        donors.insert(id, report);
    }

    // Revival: a fresh service and a fresh store adopt the archive; the
    // trace table is filed once and every session claims it.
    let config = ServiceConfig {
        shards: 4,
        control_capacity: 4096,
        // Headroom for every Restored/Completed so adoption never
        // deadlocks on a full event buffer.
        event_capacity: sessions as usize * 4 + 1024,
        ..Default::default()
    };
    let revived = Service::spawn(config);
    let store_b = Storage::new();
    let sent = revived
        .handle()
        .adopt_fleet(archive, &store_b)
        .expect("adopt fleet");
    assert_eq!(sent as u64, sessions, "every archived session adopted");
    assert_eq!(store_b.stats().traces.objects, 1);
    let mut adopted: HashMap<u64, foreco_serve::SessionReport> = HashMap::new();
    while adopted.len() < sessions as usize {
        match revived.next_event().expect("revived service alive") {
            SessionEvent::Completed { id, report } => {
                adopted.insert(id, report);
            }
            SessionEvent::RestoreFailed { id, reason } => {
                panic!("session {id} failed to restore from the archive: {reason}")
            }
            _ => {}
        }
    }
    revived.join();

    let restored_bit_identical = ids.iter().all(|id| {
        let (a, b) = (&donors[id], &adopted[id]);
        a.ticks == b.ticks
            && a.misses == b.misses
            && a.rmse_mm.to_bits() == b.rmse_mm.to_bits()
            && a.max_deviation_mm.to_bits() == b.max_deviation_mm.to_bits()
    });

    let per = |total: i64| total as f64 / sessions as f64;
    BytesRow {
        sessions,
        trace_commands,
        naive_source_bytes,
        stored_source_bytes,
        naive_source_bytes_per_session: per(naive_source_bytes),
        stored_source_bytes_per_session: per(stored_source_bytes),
        resident_reduction: naive_source_bytes as f64 / stored_source_bytes.max(1) as f64,
        inline_archive_bytes,
        dedup_archive_bytes,
        inline_archive_bytes_per_session: per(inline_archive_bytes as i64),
        dedup_archive_bytes_per_session: per(dedup_archive_bytes as i64),
        archive_reduction: inline_archive_bytes as f64 / dedup_archive_bytes.max(1) as f64,
        restored_bit_identical,
    }
}

/// The snapshot-churn scenario: mid-run FoReCo donors (full forecaster
/// history, PID state, pre-drawn fates) pushed through encode+decode
/// round-trips on both live codecs. The JSON path is exactly what a v2
/// control plane did per `Snapshot`/`Adopt` (`to_json_bytes` +
/// `from_bytes`); the binary path is what a shard does per fleet part
/// (`encode_into` a reused scratch + `from_bytes`). Same donors, same
/// rounds — the ratios are honest whichever way they land.
fn snapshot_churn_run(fx: &Fixture, sessions: u64, rounds: usize) -> SnapshotChurnRow {
    let dataset = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
    let forecaster = SharedForecaster::new(fx.var.clone());
    let replay = Arc::new(dataset.commands.clone());
    let snap_at = (dataset.commands.len() / 2).max(1) as u64;
    let donors: Vec<SessionSnapshot> = (0..sessions)
        .map(|id| {
            let spec = SessionSpec::new(
                id,
                SourceSpec::Replayed(Arc::clone(&replay)),
                ChannelSpec::ControlledLoss {
                    burst_len: 6,
                    burst_prob: 0.01,
                    seed: 40_000 + id,
                },
                RecoverySpec::FoReCo {
                    forecaster: forecaster.clone(),
                    config: RecoveryConfig::for_model(&fx.model),
                },
            );
            let mut session = Session::open(&spec, &fx.model);
            while session.tick() < snap_at {
                assert!(matches!(session.advance(), Advance::Ticked(_)));
            }
            session.snapshot().expect("churn donor snapshotable")
        })
        .collect();

    // Correctness outside the timed loops: the binary round-trip must
    // reproduce every donor exactly (struct equality pins every bit).
    let decode_exact = donors
        .iter()
        .all(|donor| SessionSnapshot::from_bytes(&donor.to_bytes()).as_ref() == Ok(donor));

    let mut json_bytes = 0u64;
    let started = Instant::now();
    for _ in 0..rounds {
        for donor in &donors {
            let bytes = donor.to_json_bytes();
            json_bytes += bytes.len() as u64;
            let back = SessionSnapshot::from_bytes(&bytes).expect("JSON v2 decodes");
            std::hint::black_box(back);
        }
    }
    let json_wall_s = started.elapsed().as_secs_f64();

    let mut scratch: Vec<u8> = Vec::new();
    let mut binary_bytes = 0u64;
    let started = Instant::now();
    for _ in 0..rounds {
        for donor in &donors {
            scratch.clear();
            donor.encode_into(&mut scratch);
            binary_bytes += scratch.len() as u64;
            let back = SessionSnapshot::from_bytes(&scratch).expect("binary v3 decodes");
            std::hint::black_box(back);
        }
    }
    let binary_wall_s = started.elapsed().as_secs_f64();

    let total = sessions as f64 * rounds as f64;
    let json_sessions_per_sec = total / json_wall_s.max(1e-12);
    let binary_sessions_per_sec = total / binary_wall_s.max(1e-12);
    let json_bytes_per_session = json_bytes as f64 / total;
    let binary_bytes_per_session = binary_bytes as f64 / total;
    SnapshotChurnRow {
        sessions,
        rounds,
        json_wall_s,
        json_sessions_per_sec,
        json_bytes_per_session,
        binary_wall_s,
        binary_sessions_per_sec,
        binary_bytes_per_session,
        codec_speedup: binary_sessions_per_sec / json_sessions_per_sec.max(1e-12),
        bytes_reduction: json_bytes_per_session / binary_bytes_per_session.max(1e-12),
        decode_exact,
    }
}

fn main() {
    // env_knob rejects zero, which would otherwise leave summary()
    // with an empty registry (and this bench with nothing to report).
    let sessions = env_knob("FORECO_SERVE_SESSIONS", 1024) as u64;
    let cycles = env_knob("FORECO_SERVE_CYCLES", 1);
    let mut shard_counts: Vec<usize> = std::env::var("FORECO_SERVE_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    if shard_counts.is_empty() {
        eprintln!("FORECO_SERVE_SHARDS parsed to nothing; using 1,2,4,8");
        shard_counts = vec![1, 2, 4, 8];
    }
    let out_path =
        std::env::var("FORECO_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    banner(
        &format!("serve_throughput — {sessions} sessions over shards {shard_counts:?}"),
        "service-scale extension of §V (one recovery loop → thousands)",
    );

    let available_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fx = Fixture::build();
    let forecaster = SharedForecaster::new(fx.var.clone());
    let replay = Arc::new(Dataset::record(Skill::Inexperienced, cycles, 0.02, 8).commands);
    println!(
        "workload: {} commands/session, {} sessions, forecaster {}, \
         {available_parallelism} hardware threads\n",
        replay.len(),
        sessions,
        forecaster.name()
    );
    println!(
        "{:>7} {:>12} {:>10} {:>14} {:>9} {:>10} {:>10}",
        "shards", "ticks", "wall [s]", "ticks/s", "speedup", "p50 [mm]", "p99 [mm]"
    );

    let specs = |n: u64| -> Vec<SessionSpec> {
        (0..n)
            .map(|id| {
                SessionSpec::new(
                    id,
                    SourceSpec::Replayed(Arc::clone(&replay)),
                    ChannelSpec::ControlledLoss {
                        burst_len: 6,
                        burst_prob: 0.01,
                        seed: 40_000 + id,
                    },
                    RecoverySpec::FoReCo {
                        forecaster: forecaster.clone(),
                        config: RecoveryConfig::for_model(&fx.model),
                    },
                )
            })
            .collect()
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut base_rate = 0.0f64;
    for &shards in &shard_counts {
        let service = Service::spawn(ServiceConfig::with_shards(shards));
        let started = Instant::now();
        let registry = service.run_to_completion(specs(sessions));
        let wall_s = started.elapsed().as_secs_f64();
        let summary = registry.summary().expect("sessions completed");
        let ticks_per_sec = summary.total_ticks as f64 / wall_s;
        if rows.is_empty() {
            base_rate = ticks_per_sec;
        }
        let speedup = ticks_per_sec / base_rate;
        println!(
            "{:>7} {:>12} {:>10.3} {:>14.0} {:>8.2}x {:>10.2} {:>10.2}",
            shards,
            summary.total_ticks,
            wall_s,
            ticks_per_sec,
            speedup,
            summary.rmse_mm.p50,
            summary.rmse_mm.p99
        );
        rows.push(Row {
            shards,
            sessions,
            total_ticks: summary.total_ticks,
            total_misses: summary.total_misses,
            wall_s,
            ticks_per_sec,
            speedup_vs_1_shard: speedup,
            rmse_p50_mm: summary.rmse_mm.p50,
            rmse_p99_mm: summary.rmse_mm.p99,
        });
    }

    // Optional CI gate: the single-shard throughput, normalised by the
    // frozen calibration kernel measured in this same process on this
    // same container, must not regress below the committed baseline
    // ratio × 0.9. Parsed up front so a typo fails fast, but the
    // verdict is deferred to the end of main — a breach must not
    // discard the engine_hot_path diagnostics (ns/tick, allocs/tick)
    // or the BENCH_serve.json artifact needed to debug it.
    let ratio_budget: Option<f64> = std::env::var("FORECO_ENGINE_TICKS_RATIO")
        .ok()
        .map(|v| v.parse().expect("FORECO_ENGINE_TICKS_RATIO: number"));

    // ---- calibration: the frozen container-speed denominator ----
    let calibration = calibration_run(20_000_000);
    let one_shard_rate = rows
        .iter()
        .find(|r| r.shards == 1)
        .map(|r| r.ticks_per_sec)
        .unwrap_or(0.0);
    let engine_vs_calibration_ratio = one_shard_rate / calibration.iterations_per_sec;
    println!(
        "\ncalibration: {:.0} kernel iters/s in {:.3} s — engine/calibration ratio {:.4}",
        calibration.iterations_per_sec, calibration.wall_s, engine_vs_calibration_ratio
    );

    // ---- engine hot path: one session's steady-state tick profile ----
    let hotpath_ticks = env_knob("FORECO_SERVE_HOTPATH_TICKS", 200_000) as u64;
    println!("\nengine hot path: ~{hotpath_ticks} measured steady-state ticks per forecaster");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "forecaster", "ticks", "miss frac", "ns/tick", "ticks/s", "allocs/tick"
    );
    let hot_replay = Arc::new(Dataset::record(Skill::Inexperienced, 8, 0.02, 23).commands);
    let mut engine_hot_path = Vec::new();
    for (name, shared) in [
        ("VAR", forecaster.clone()),
        (
            "MA",
            SharedForecaster::new(MovingAverage::new(5, fx.model.dof())),
        ),
    ] {
        let row = engine_hot_path_run(name, shared, &fx, &hot_replay, hotpath_ticks);
        println!(
            "{:>10} {:>10} {:>10.4} {:>12.1} {:>12.0} {:>12.4}",
            row.forecaster,
            row.ticks,
            row.miss_fraction,
            row.ns_per_tick,
            row.ticks_per_sec,
            row.allocs_per_tick
        );
        engine_hot_path.push(row);
    }

    // ---- batched scenario: adaptive-plan lanes vs per-session dispatch ----
    let batch_sessions = env_knob("FORECO_SERVE_BATCH_SESSIONS", 256);
    let batch_rounds = env_knob("FORECO_SERVE_BATCH_ROUNDS", 400);
    let dof = fx.model.dof();
    let families: Vec<(&str, SharedForecaster)> = vec![
        ("VAR", forecaster.clone()),
        (
            "Kalman-CV",
            SharedForecaster::new(KalmanCv::default_teleop(7, dof)),
        ),
        ("MA", SharedForecaster::new(MovingAverage::new(5, dof))),
        ("Holt", SharedForecaster::new(Holt::default_teleop(7, dof))),
    ];
    println!(
        "\nbatched: {batch_sessions}-engine lanes × {batch_rounds} miss rounds, \
         scalar dispatch vs the adaptive plan's layout"
    );
    println!(
        "{:>10} {:>12} {:>10} {:>14} {:>14} {:>9} {:>14}",
        "forecaster", "layout", "ticks", "scalar ns/t", "batched ns/t", "speedup", "bit-identical"
    );
    let mut batched = Vec::new();
    for (name, shared) in &families {
        let row = batched_run(
            name,
            shared.clone(),
            &fx,
            &hot_replay,
            batch_sessions,
            batch_rounds,
        );
        println!(
            "{:>10} {:>12} {:>10} {:>14.1} {:>14.1} {:>8.2}x {:>14}",
            row.forecaster,
            row.layout,
            row.ticks,
            row.scalar_ns_per_tick,
            row.batched_ns_per_tick,
            row.batched_speedup_vs_scalar,
            row.bit_identical
        );
        if !row.bit_identical {
            eprintln!(
                "FAIL: batched {} lane diverged from the scalar path",
                row.forecaster
            );
            std::process::exit(1);
        }
        batched.push(row);
    }

    // ---- lane_sweep: layout speedup vs width, the threshold evidence ----
    let sweep_widths: Vec<usize> = std::env::var("FORECO_SERVE_SWEEP_WIDTHS")
        .unwrap_or_else(|_| "1,2,4,8,16,31,32,33,64,128,256,512,1024".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    let sweep_ticks = env_knob("FORECO_SERVE_SWEEP_TICKS", 16_384);
    println!(
        "\nlane_sweep: forced member-major and slot-major vs scalar across widths \
         {sweep_widths:?} (~{sweep_ticks} miss ticks per cell)"
    );
    println!(
        "{:>10} {:>7} {:>12} {:>12} {:>14} {:>14} {:>9} {:>14}",
        "forecaster",
        "width",
        "layout",
        "chosen",
        "scalar ns/t",
        "layout ns/t",
        "speedup",
        "bit-identical"
    );
    let mut lane_sweep = Vec::new();
    // Only the expensive families have a slot-major kernel to sweep;
    // the cheap ones are covered by the batched rows above (their plan
    // is Scalar at every width, so a sweep would re-measure noise).
    for (name, shared) in families
        .iter()
        .filter(|(_, s)| foreco_forecast::Forecaster::cost_class(s) == CostClass::Expensive)
    {
        for &width in &sweep_widths {
            let rounds = (sweep_ticks / width).clamp(8, 128);
            for layout in [LaneLayout::MemberMajor, LaneLayout::SlotMajor] {
                let row = lane_sweep_run(name, shared, &fx, &hot_replay, width, rounds, layout);
                println!(
                    "{:>10} {:>7} {:>12} {:>12} {:>14.1} {:>14.1} {:>8.2}x {:>14}",
                    row.forecaster,
                    row.width,
                    row.layout,
                    row.chosen,
                    row.scalar_ns_per_tick,
                    row.layout_ns_per_tick,
                    row.speedup_vs_scalar,
                    row.bit_identical
                );
                if !row.bit_identical {
                    eprintln!(
                        "FAIL: lane_sweep {} width {} layout {} diverged from the scalar path",
                        row.forecaster, row.width, row.layout
                    );
                    std::process::exit(1);
                }
                lane_sweep.push(row);
            }
        }
    }

    // ---- idle-heavy scenario: mostly-parked fleet, few hot sessions ----
    let idle_sessions = env_knob("FORECO_SERVE_IDLE_SESSIONS", 4096) as u64;
    let active_pct = env_knob("FORECO_SERVE_IDLE_ACTIVE_PCT", 2) as u64;
    let rounds = env_knob("FORECO_SERVE_IDLE_ROUNDS", 400);
    let active = (idle_sessions * active_pct / 100).max(1);
    let idle_shards = *shard_counts.iter().max().expect("non-empty shard list");
    println!(
        "\nidle-heavy: {idle_sessions} streamed sessions, {active} active ({active_pct}%), \
         {idle_shards} shards, {rounds} inject rounds"
    );
    println!(
        "{:>12} {:>10} {:>12} {:>16} {:>15} {:>11}",
        "scheduler", "wall [s]", "passes", "wakeups/tick", "runnable ratio", "migrations"
    );
    let mut idle_heavy = Vec::new();
    for scheduler in [Scheduler::EventDriven, Scheduler::Eager] {
        // The eager sweep pays O(total sessions) per pass; a tenth of
        // the rounds is plenty to pin its (structural) wakeup rate.
        let sched_rounds = match scheduler {
            Scheduler::EventDriven => rounds,
            Scheduler::Eager => (rounds / 10).max(20),
        };
        let row = idle_heavy_run(
            scheduler,
            idle_shards,
            idle_sessions,
            active,
            sched_rounds,
            &fx,
            &forecaster,
        );
        println!(
            "{:>12} {:>10.3} {:>12} {:>16.1} {:>15.4} {:>11}",
            row.scheduler,
            row.wall_s,
            row.passes,
            row.wakeups_per_tick,
            row.runnable_ratio,
            row.balancer_migrations
        );
        idle_heavy.push(row);
    }

    // Optional CI gate: idle-heavy wakeups/tick must track the active
    // population, not the fleet size.
    if let Ok(budget) = std::env::var("FORECO_SERVE_WAKEUP_BUDGET") {
        let budget: f64 = budget.parse().expect("FORECO_SERVE_WAKEUP_BUDGET: number");
        let event_row = &idle_heavy[0];
        assert_eq!(event_row.scheduler, "EventDriven");
        if event_row.wakeups_per_tick > budget {
            eprintln!(
                "FAIL: idle-heavy wakeups/tick {:.1} exceeds budget {budget} \
                 ({} sessions, {} active) — scheduler regressed toward O(total) sweeps",
                event_row.wakeups_per_tick, event_row.sessions, event_row.active_sessions
            );
            std::process::exit(1);
        }
        println!(
            "wakeup budget: {:.1} ≤ {budget} (OK)",
            event_row.wakeups_per_tick
        );
    }

    // ---- ingress scenario: the wire pipeline, loopback vs UDP ----
    let ingress_sessions = env_knob("FORECO_SERVE_INGRESS_SESSIONS", 16) as u64;
    let ingress_frames = env_knob("FORECO_SERVE_INGRESS_FRAMES", 1000);
    let ingress_trace = Dataset::record(Skill::Inexperienced, 4, 0.02, 91)
        .head(ingress_frames)
        .commands;
    println!(
        "\ningress: {ingress_sessions} sessions × {} datagrams through the foreco-net gateway",
        ingress_trace.len()
    );
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>8}",
        "transport", "wall [s]", "datagrams/s", "delivered", "lost"
    );
    let mut ingress = Vec::new();
    for transport in ["loopback", "udp"] {
        let row = ingress_run(transport, idle_shards, ingress_sessions, &ingress_trace);
        println!(
            "{:>10} {:>10.3} {:>14.0} {:>12} {:>8}",
            row.transport, row.wall_s, row.datagrams_per_sec, row.delivered, row.lost
        );
        ingress.push(row);
    }

    // ---- fleet soak: observability plane under open/close churn ----
    let soak_sessions = env_knob("FORECO_SERVE_SOAK_SESSIONS", 10_000) as u64;
    let soak_ticks = env_knob("FORECO_SERVE_SOAK_TICKS", 32);
    println!(
        "\nfleet-soak: {soak_sessions} sessions × {soak_ticks} ticks churned over \
         {idle_shards} shards with live scrapes and a fleet-event subscriber"
    );
    let fleet_soak = fleet_soak_run(idle_shards, soak_sessions, soak_ticks);
    println!(
        "{:>10} {:>14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "wall [s]", "ticks/s", "snapshots", "scrapes", "scrape p99", "events", "dropped"
    );
    println!(
        "{:>10.3} {:>14.0} {:>10} {:>10} {:>9.0} µs {:>12} {:>10}",
        fleet_soak.wall_s,
        fleet_soak.ticks_per_sec,
        fleet_soak.snapshots,
        fleet_soak.scrapes,
        fleet_soak.scrape_p99_us,
        fleet_soak.events_delivered,
        fleet_soak.events_dropped
    );
    assert_eq!(
        fleet_soak.session_ticks,
        soak_sessions * soak_ticks as u64,
        "every soak session must run its full trace"
    );

    // ---- shared-storage dedup: resident + checkpoint bytes/session ----
    let dedup_sessions = env_knob("FORECO_SERVE_DEDUP_SESSIONS", 1024) as u64;
    let dedup_cycles = env_knob("FORECO_SERVE_DEDUP_CYCLES", 4);
    println!(
        "\nbytes/session: {dedup_sessions} store-backed sessions sharing one \
         {dedup_cycles}-cycle trace"
    );
    let bytes_row = bytes_per_session_run(&fx, dedup_sessions, dedup_cycles);
    println!(
        "{:>24} {:>16} {:>16} {:>10}",
        "", "naive", "dedup", "reduction"
    );
    println!(
        "{:>24} {:>16.0} {:>16.0} {:>9.1}x",
        "resident source B/sess",
        bytes_row.naive_source_bytes_per_session,
        bytes_row.stored_source_bytes_per_session,
        bytes_row.resident_reduction
    );
    println!(
        "{:>24} {:>16.0} {:>16.0} {:>9.1}x",
        "archive B/sess",
        bytes_row.inline_archive_bytes_per_session,
        bytes_row.dedup_archive_bytes_per_session,
        bytes_row.archive_reduction
    );
    println!(
        "restored bit-identical to donors: {}",
        bytes_row.restored_bit_identical
    );
    if !bytes_row.restored_bit_identical {
        eprintln!("FAIL: archive-adopted sessions diverged from their donors");
        std::process::exit(1);
    }

    // ---- snapshot churn: JSON-v2 vs binary-v3 codec throughput ----
    let churn_sessions = env_knob("FORECO_SERVE_CHURN_SESSIONS", 64) as u64;
    let churn_rounds = env_knob("FORECO_SERVE_CHURN_ROUNDS", 8);
    println!(
        "\nsnapshot-churn: {churn_sessions} mid-run donors × {churn_rounds} \
         encode+decode rounds per codec"
    );
    let churn = snapshot_churn_run(&fx, churn_sessions, churn_rounds);
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "codec", "sessions/s", "bytes/sess", "wall [s]"
    );
    println!(
        "{:>10} {:>14.0} {:>14.0} {:>10.3}",
        "json-v2", churn.json_sessions_per_sec, churn.json_bytes_per_session, churn.json_wall_s
    );
    println!(
        "{:>10} {:>14.0} {:>14.0} {:>10.3}",
        "binary-v3",
        churn.binary_sessions_per_sec,
        churn.binary_bytes_per_session,
        churn.binary_wall_s
    );
    println!(
        "codec speedup {:.1}x, bytes reduction {:.1}x, decode exact: {}",
        churn.codec_speedup, churn.bytes_reduction, churn.decode_exact
    );
    if !churn.decode_exact {
        eprintln!("FAIL: a binary snapshot round-trip did not reproduce its donor");
        std::process::exit(1);
    }

    let output = Output {
        bench: "serve_throughput".to_string(),
        sessions,
        ticks_per_session: replay.len(),
        forecaster: forecaster.name().to_string(),
        available_parallelism,
        shard_counts: shard_counts.clone(),
        calibration,
        engine_vs_calibration_ratio,
        rows,
        engine_hot_path,
        batched,
        lane_sweep,
        idle_heavy,
        ingress,
        fleet_soak,
        bytes_per_session: bytes_row,
        snapshot_churn: churn,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialise bench output");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("\nwrote {out_path}");

    // Deferred ratio-gate verdict (see above): every scenario has run
    // and the artifact is on disk, so a breach still leaves the full
    // diagnostic trail behind. The gate is dimensionless — engine
    // throughput over the frozen calibration kernel's speed, both
    // measured in this process on this container — so it transfers
    // across machines where an absolute ticks/s floor did not.
    if let Some(budget) = ratio_budget {
        assert!(
            output.rows.iter().any(|r| r.shards == 1),
            "FORECO_ENGINE_TICKS_RATIO needs a 1-shard row"
        );
        if output.engine_vs_calibration_ratio < budget {
            eprintln!(
                "FAIL: engine/calibration ratio {:.4} below budget {budget} — \
                 the engine hot path regressed relative to this container's \
                 f64 speed (see the engine_hot_path rows in {out_path} for \
                 ns/tick and allocs/tick)",
                output.engine_vs_calibration_ratio
            );
            std::process::exit(1);
        }
        println!(
            "engine ratio gate: {:.4} ≥ {budget} (OK)",
            output.engine_vs_calibration_ratio
        );
    }
}
