//! Ablation: system parameters the paper fixes without sweeping —
//! history length `R`, tolerance `τ`, AP queue depth `Q`, and the
//! training split `α`.
//!
//! ```sh
//! cargo run --release -p foreco-bench --bin ablation_parameters
//! ```

use foreco_bench::{banner, Fixture};
use foreco_core::channel::{Channel, JammedChannel};
use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
use foreco_forecast::{one_step_rmse, Var};
use foreco_robot::DriverConfig;
use foreco_wifi::{Interference, LinkConfig};

fn main() {
    banner(
        "Ablation — R, τ, Q, α",
        "DESIGN.md §8 (parameters the paper fixes)",
    );
    let fx = Fixture::build();
    let commands = &fx.test.commands[..1500.min(fx.test.commands.len())];
    let link = LinkConfig {
        stations: 15,
        interference: Interference::new(0.04, 60),
        ..LinkConfig::default()
    };

    let closed_loop = |var: &Var, link: LinkConfig, tolerance: f64, seeds: u64| -> (f64, f64) {
        let mut base_sum = 0.0;
        let mut fore_sum = 0.0;
        for seed in 0..seeds {
            let mut ch = JammedChannel::new(link, tolerance, 0xAB3 + seed);
            let fates = ch.fates(commands.len());
            base_sum += run_closed_loop(
                &fx.model,
                commands,
                &fates,
                RecoveryMode::Baseline,
                DriverConfig::default(),
            )
            .rmse_mm;
            let engine = RecoveryEngine::new(
                Box::new(var.clone()),
                RecoveryConfig::for_model(&fx.model),
                fx.model.clamp(&commands[0]),
            );
            fore_sum += run_closed_loop(
                &fx.model,
                commands,
                &fates,
                RecoveryMode::FoReCo(engine),
                DriverConfig::default(),
            )
            .rmse_mm;
        }
        (base_sum / seeds as f64, fore_sum / seeds as f64)
    };

    // --- history length R -------------------------------------------------
    println!("\nR sweep (jammed 15-robot channel):");
    println!(
        "{:<6} {:>14} {:>14} {:>16}",
        "R", "1-step [rad]", "FoReCo [mm]", "weights"
    );
    for r in [1usize, 2, 5, 10, 20] {
        let var = Var::fit_differenced(&fx.train, r, 1e-6).expect("fit");
        let one_step = one_step_rmse(&var, &fx.test);
        let (_, fore) = closed_loop(&var, link, 0.0, 3);
        println!(
            "{r:<6} {one_step:>14.5} {fore:>14.2} {:>16}",
            var.num_params()
        );
    }

    // --- tolerance τ -------------------------------------------------------
    println!("\nτ sweep (extra deadline slack beyond Ω):");
    println!(
        "{:<10} {:>14} {:>14}",
        "τ [ms]", "no-fc [mm]", "FoReCo [mm]"
    );
    let var = &fx.var;
    for tau_ms in [0.0f64, 5.0, 10.0, 20.0, 40.0] {
        let (base, fore) = closed_loop(var, link, tau_ms * 1e-3, 3);
        println!("{tau_ms:<10} {base:>14.2} {fore:>14.2}");
    }

    // --- AP queue depth Q ---------------------------------------------------
    println!("\nQ sweep (AP queue depth; bufferbloat demonstration):");
    println!(
        "{:<6} {:>12} {:>14} {:>14}",
        "Q", "miss rate", "no-fc [mm]", "FoReCo [mm]"
    );
    for q in [1usize, 2, 5, 10, 20] {
        let l = LinkConfig {
            queue_capacity: q,
            ..link
        };
        let mut ch = JammedChannel::new(l, 0.0, 0xAB4);
        let fates = ch.fates(commands.len());
        let miss = fates.iter().filter(|f| !f.on_time()).count() as f64 / fates.len() as f64;
        let (base, fore) = closed_loop(var, l, 0.0, 3);
        println!("{q:<6} {miss:>12.3} {base:>14.2} {fore:>14.2}");
    }

    // --- training split α ----------------------------------------------------
    println!("\nα sweep (fraction of the experienced dataset used for training):");
    println!("{:<8} {:>14} {:>14}", "α", "1-step [rad]", "FoReCo [mm]");
    for alpha in [0.2f64, 0.4, 0.6, 0.8] {
        let (train, _) = fx.train.split(alpha);
        match Var::fit_differenced(&train, 5, 1e-6) {
            Ok(var) => {
                let one_step = one_step_rmse(&var, &fx.test);
                let (_, fore) = closed_loop(&var, link, 0.0, 3);
                println!("{alpha:<8} {one_step:>14.5} {fore:>14.2}");
            }
            Err(e) => println!("{alpha:<8} (not enough data: {e})"),
        }
    }
    println!("\nreading: R beyond ~5 buys little (paper found the same sweeping 1..20);");
    println!("τ slack converts misses into hits for both modes; Q confirms bufferbloat;");
    println!("α shows the VAR saturating quickly with data.");
}
