//! Stage timings of the training pipeline (Table I's structure).

use criterion::{criterion_group, criterion_main, Criterion};
use foreco_forecast::pipeline::{check_quality, PipelineConfig};
use foreco_teleop::{Dataset, Skill};
use std::hint::black_box;

fn bench_pipeline_stages(c: &mut Criterion) {
    let ds = Dataset::record(Skill::Experienced, 8, 0.02, 3);
    let cfg = PipelineConfig::default();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("load_data", |b| b.iter(|| black_box(ds.clone())));
    group.bench_function("down_sampling", |b| b.iter(|| black_box(ds.downsample(2))));
    group.bench_function("check_quality", |b| {
        b.iter(|| black_box(check_quality(black_box(&ds), &cfg)))
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(foreco_forecast::pipeline::run(black_box(&ds), &cfg).unwrap()))
    });
    group.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(20);
    group.bench_function("record_one_cycle", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Dataset::record(Skill::Inexperienced, 1, 0.02, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_stages, bench_dataset_generation);
criterion_main!(benches);
