//! Recovery-engine and closed-loop throughput: the engine tick must be
//! negligible against the 20 ms control period.

use criterion::{criterion_group, criterion_main, Criterion};
use foreco_core::channel::{Channel, ControlledLossChannel};
use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
use foreco_forecast::Var;
use foreco_robot::{niryo_one, DriverConfig};
use foreco_teleop::{Dataset, Skill};
use std::hint::black_box;

fn bench_engine_tick(c: &mut Criterion) {
    let train = Dataset::record(Skill::Experienced, 4, 0.02, 4);
    let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
    let model = niryo_one();
    let mut group = c.benchmark_group("engine");
    group.bench_function("tick_delivered", |b| {
        let mut engine = RecoveryEngine::new(
            Box::new(var.clone()),
            RecoveryConfig::for_model(&model),
            model.home(),
        );
        let cmd = model.home();
        b.iter(|| black_box(engine.tick(Some(cmd.clone()))))
    });
    group.bench_function("tick_forecast", |b| {
        let mut engine = RecoveryEngine::new(
            Box::new(var.clone()),
            RecoveryConfig::for_model(&model),
            model.home(),
        );
        for i in 0..10 {
            let mut cmd = model.home();
            cmd[0] += 0.01 * i as f64;
            engine.tick(Some(cmd));
        }
        b.iter(|| black_box(engine.tick(None)))
    });
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let train = Dataset::record(Skill::Experienced, 4, 0.02, 5);
    let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 6);
    let model = niryo_one();
    let commands = test.commands[..500].to_vec();
    let fates = ControlledLossChannel::new(10, 0.01, 7).fates(commands.len());
    let mut group = c.benchmark_group("closed_loop");
    group.sample_size(20);
    group.bench_function("foreco_500_ticks", |b| {
        b.iter(|| {
            let engine = RecoveryEngine::new(
                Box::new(var.clone()),
                RecoveryConfig::for_model(&model),
                model.clamp(&commands[0]),
            );
            black_box(run_closed_loop(
                &model,
                &commands,
                &fates,
                RecoveryMode::FoReCo(engine),
                DriverConfig::default(),
            ))
        })
    });
    group.bench_function("baseline_500_ticks", |b| {
        b.iter(|| {
            black_box(run_closed_loop(
                &model,
                &commands,
                &fates,
                RecoveryMode::Baseline,
                DriverConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_tick, bench_closed_loop);
criterion_main!(benches);
