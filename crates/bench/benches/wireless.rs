//! Wireless substrate performance: DCF fixed-point solve, per-command
//! link simulation, slot-level simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use foreco_wifi::{DcfModel, Interference, LinkConfig, Params, SlotSimulator, WirelessLink};
use std::hint::black_box;

fn bench_analytical(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcf");
    group.bench_function("solve_25_stations_interfered", |b| {
        let model = DcfModel {
            params: Params::default_paper(),
            stations: 25,
            interference: Interference::new(0.05, 100),
            offered_interval: Some(0.020),
        };
        b.iter(|| black_box(model.solve()))
    });
    group.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("link");
    group.bench_function("simulate_1k_commands", |b| {
        let cfg = LinkConfig {
            stations: 15,
            interference: Interference::new(0.025, 50),
            ..LinkConfig::default()
        };
        let mut link = WirelessLink::new(cfg, 7);
        b.iter(|| black_box(link.simulate(1000)))
    });
    group.finish();
}

fn bench_slotsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("slotsim");
    group.sample_size(10);
    group.bench_function("dcf_5_stations_1k_frames", |b| {
        let sim = SlotSimulator {
            params: Params::default_paper(),
            stations: 5,
            interference: Interference::new(0.02, 20),
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(1000, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytical, bench_link, bench_slotsim);
criterion_main!(benches);
