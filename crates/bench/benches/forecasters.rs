//! Inference latency of every forecaster — the "Inference (ms)" column of
//! Table II. The paper's bar: inference must fit far inside the 20 ms
//! control period even on weak hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use foreco_forecast::{
    Forecaster, Holt, MovingAverage, Seq2SeqForecaster, Seq2SeqTrainConfig, Var, Varma,
};
use foreco_teleop::{Dataset, Skill};
use std::hint::black_box;

fn bench_forecasters(c: &mut Criterion) {
    let train = Dataset::record(Skill::Experienced, 4, 0.02, 1);
    let hist: Vec<Vec<f64>> = train.commands[..24].to_vec();

    let mut group = c.benchmark_group("inference");
    let ma = MovingAverage::new(20, 6);
    group.bench_function("ma_r20", |b| {
        b.iter(|| black_box(ma.forecast(black_box(&hist))))
    });

    let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
    group.bench_function("var_r5", |b| {
        b.iter(|| black_box(var.forecast(black_box(&hist))))
    });

    let var20 = Var::fit_differenced(&train, 20, 1e-6).unwrap();
    group.bench_function("var_r20", |b| {
        b.iter(|| black_box(var20.forecast(black_box(&hist))))
    });

    let holt = Holt::default_teleop(10, 6);
    group.bench_function("holt_r10", |b| {
        b.iter(|| black_box(holt.forecast(black_box(&hist))))
    });

    let varma = Varma::fit(&train, 4, 2, 1e-6).unwrap();
    group.bench_function("varma_4_2", |b| {
        b.iter(|| black_box(varma.forecast(black_box(&hist))))
    });

    let s2s = Seq2SeqForecaster::fit(
        &train,
        &Seq2SeqTrainConfig {
            r: 5,
            epochs: 1,
            subsample: 512,
            ..Default::default()
        },
    );
    group.bench_function("seq2seq_200_30", |b| {
        b.iter(|| black_box(s2s.forecast(black_box(&hist))))
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let train = Dataset::record(Skill::Experienced, 4, 0.02, 2);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("var_r5_fit", |b| {
        b.iter(|| black_box(Var::fit_differenced(black_box(&train), 5, 1e-6).unwrap()))
    });
    group.bench_function("var_r20_fit", |b| {
        b.iter(|| black_box(Var::fit_differenced(black_box(&train), 20, 1e-6).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_forecasters, bench_training);
criterion_main!(benches);
