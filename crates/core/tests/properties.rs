//! Property-based tests for the recovery engine and channels.

use foreco_core::channel::{Arrival, Channel, ControlledLossChannel, IdealChannel};
use foreco_core::{RecoveryConfig, RecoveryEngine};
use foreco_forecast::MovingAverage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine emits exactly one command per tick, never alters
    /// delivered commands, and its counters add up — for any miss pattern.
    #[test]
    fn engine_conservation_and_passthrough(
        misses in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut engine = RecoveryEngine::new(
            Box::new(MovingAverage::new(3, 2)),
            RecoveryConfig::default(),
            vec![0.0, 0.0],
        );
        let mut delivered = 0u64;
        for (i, &miss) in misses.iter().enumerate() {
            let out = if miss {
                engine.tick(None)
            } else {
                delivered += 1;
                let cmd = vec![i as f64 * 1e-3, -(i as f64) * 1e-3];
                let out = engine.tick(Some(cmd.clone()));
                prop_assert_eq!(&out.command, &cmd, "pass-through must be exact");
                prop_assert!(!out.forecast);
                out
            };
            prop_assert_eq!(out.command.len(), 2);
            prop_assert!(out.command.iter().all(|v| v.is_finite()));
        }
        let s = engine.stats();
        prop_assert_eq!(s.ticks as usize, misses.len());
        prop_assert_eq!(s.delivered, delivered);
        prop_assert_eq!(
            s.delivered + s.forecasts + s.warmup_repeats + s.horizon_holds,
            misses.len() as u64
        );
    }

    /// With limits configured, every output honours them, whatever the
    /// inputs.
    #[test]
    fn engine_limits_always_hold(
        misses in proptest::collection::vec(any::<bool>(), 1..100),
        scale in 0.1f64..10.0,
    ) {
        let mut engine = RecoveryEngine::new(
            Box::new(MovingAverage::new(2, 1)),
            RecoveryConfig {
                limits: Some(vec![(-1.0, 1.0)]),
                max_step: None,
                ..Default::default()
            },
            vec![0.0],
        );
        for (i, &miss) in misses.iter().enumerate() {
            let out = if miss {
                engine.tick(None)
            } else {
                engine.tick(Some(vec![(i as f64 * scale).sin() * 2.0]))
            };
            if out.forecast {
                prop_assert!(out.command[0] >= -1.0 - 1e-12 && out.command[0] <= 1.0 + 1e-12);
            }
        }
    }

    /// Channels produce exactly `n` fates; the ideal channel never misses;
    /// controlled-loss bursts are multiples of the configured length.
    #[test]
    fn channel_fate_invariants(n in 1usize..2000, burst in 1usize..20, seed in 0u64..50) {
        prop_assert!(IdealChannel.fates(n).iter().all(Arrival::on_time));
        let mut ch = ControlledLossChannel::new(burst, 0.02, seed);
        let fates = ch.fates(n);
        prop_assert_eq!(fates.len(), n);
        let mut run = 0usize;
        let mut runs = Vec::new();
        for f in &fates {
            if matches!(f, Arrival::Lost) {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        for r in runs {
            prop_assert_eq!(r % burst, 0, "burst of {} not a multiple of {}", r, burst);
        }
    }
}
