//! The FoReCo building block (§IV-A).
//!
//! Protocol, straight from the paper:
//!
//! - FoReCo awaits a control command every `Ω` ms;
//! - if the next command arrives later than `a(c_i) + Ω + τ`, FoReCo
//!   forecasts it as `ĉ_{i+1} = f({ĉ_j}_{i−R+1..i}, w)` and injects the
//!   forecast into the robot drivers;
//! - commands that arrive on time pass through **unchanged** and are
//!   stored in the history (`ĉ_i = c_i` when `Δ(c_i) ≤ τ`, eq. 3);
//! - the forecast history contains both real commands and previous
//!   forecasts — which is why forecast error compounds over long loss
//!   bursts (Fig. 9c).
//!
//! Extension (§VII-C, implemented behind [`RecoveryConfig::use_late_commands`]):
//! when a command that missed its deadline eventually arrives, it can
//! replace the forecast in the history so later forecasts are seeded with
//! truth instead of guesses.

use foreco_forecast::{ForecastScratch, Forecaster, HistoryView};
use serde::{Deserialize, Serialize};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Command period `Ω` (seconds). Used for reporting only; the engine
    /// is tick-driven.
    pub period: f64,
    /// §VII-C extension: patch the history with late-arriving commands.
    pub use_late_commands: bool,
    /// Per-joint `(min, max)` bounds applied to forecasts. A command
    /// outside the robot's joint limits is invalid, so forecasts are
    /// clamped before injection *and* before entering the history — which
    /// also bounds recursive-forecast drift during long loss bursts
    /// (Fig. 9c) to the physical workspace.
    pub limits: Option<Vec<(f64, f64)>>,
    /// Credible forecasting horizon: after this many *consecutive*
    /// forecasts the engine stops extrapolating and holds the last
    /// forecast until real data returns.
    ///
    /// Rationale: Fig. 7 shows the forecast error growing with the
    /// forecasting window (≈ 60 mm at 1 s for VAR) — beyond the horizon,
    /// recursive extrapolation *adds* trajectory error instead of
    /// removing it (the drift the paper itself observes in Fig. 9c and
    /// §VII-C). Holding at the trend-followed pose still dominates the
    /// repeat-last baseline, which froze a full horizon earlier.
    /// `None` disables the safeguard (pure paper behaviour).
    pub max_consecutive_forecasts: Option<usize>,
    /// Per-tick joint motion bound (rad) applied to forecasts: no valid
    /// command can move a joint faster than the joystick's moving offset
    /// (0.04 rad per command on the paper's Niryo), so a forecast step
    /// beyond it is clamped toward the previous history entry.
    ///
    /// This neutralises the correction-jump failure mode: the first real
    /// command after a loss burst differs from the last forecast by the
    /// accumulated drift, which a naive recursion would read as a huge
    /// velocity and extrapolate.
    pub max_step: Option<f64>,
    /// Dead-reckoning rebase: when truth returns after `k` consecutive
    /// forecasts, translate those `k` history entries so the segment ends
    /// at the real command. The accumulated forecast drift is absorbed as
    /// a position correction instead of appearing as one giant phantom
    /// velocity in the next regression window — without it, sustained
    /// loss regimes (Fig. 8's dark cells) poison every forecast issued
    /// within `R` ticks of a recovery.
    pub history_rebase: bool,
    /// Adaptive damped-trend floor `γ_min ∈ (0, 1]`: the `k`-th
    /// consecutive forecast is blended toward a hold as
    /// `last + γ_eff^k (pred − last)` with
    /// `γ_eff = γ_min + (1 − γ_min) · q`, where `q` is the fraction of
    /// *real* (non-forecast) commands in the history window when the
    /// outage began.
    ///
    /// The two regimes this reconciles:
    /// - **isolated burst** (Fig. 9): the window is all real data,
    ///   `q = 1 → γ_eff = 1` — trust the trend for the whole burst;
    /// - **sustained outage** (Fig. 8's dark cells): the window is mostly
    ///   forecasts, `q → 0 → γ_eff → γ_min` — ease quickly into a hold,
    ///   because extrapolating forecasts-of-forecasts only compounds
    ///   error (the §VII-C drift concern).
    ///
    /// `None` disables damping entirely.
    pub trend_damping: Option<f64>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            period: 0.020,
            use_late_commands: false,
            limits: None,
            max_consecutive_forecasts: Some(50), // 1 s at the 50 Hz loop
            max_step: Some(0.04),                // the Niryo moving offset
            history_rebase: true,
            trend_damping: Some(0.85),
        }
    }
}

impl RecoveryConfig {
    /// Configuration with the joint limits of an arm model.
    pub fn for_model(model: &foreco_robot::ArmModel) -> Self {
        Self {
            limits: Some(model.limits.iter().map(|l| (l.min, l.max)).collect()),
            ..Default::default()
        }
    }
}

/// What the engine did on a tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickOutcome {
    /// The command to feed the robot drivers this tick.
    pub command: Vec<f64>,
    /// True when `command` is a forecast (the network missed its slot).
    pub forecast: bool,
}

/// Running counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Total ticks processed.
    pub ticks: u64,
    /// Commands passed through on time.
    pub delivered: u64,
    /// Forecasts injected.
    pub forecasts: u64,
    /// Misses covered by repeat-last because history was still warming up.
    pub warmup_repeats: u64,
    /// Misses covered by holding the pose because the consecutive-forecast
    /// horizon was exhausted.
    pub horizon_holds: u64,
    /// Late commands spliced into the history (§VII-C mode only).
    pub late_patches: u64,
}

/// Why exporting or restoring engine state failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineStateError {
    /// The engine's forecaster has no serialisable form (e.g. seq2seq):
    /// `Forecaster::export_state` returned `None`.
    UnsupportedForecaster {
        /// Display name of the offending forecaster.
        name: &'static str,
    },
    /// The snapshot's internal invariants do not hold (corrupt or
    /// hand-edited data).
    Invalid {
        /// What was inconsistent.
        reason: String,
    },
}

impl std::fmt::Display for EngineStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineStateError::UnsupportedForecaster { name } => {
                write!(f, "forecaster `{name}` has no serialisable state")
            }
            EngineStateError::Invalid { reason } => {
                write!(f, "invalid engine snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineStateError {}

/// Complete serialised form of a mid-run [`RecoveryEngine`]: the
/// forecaster, the configuration, the `{ĉ_j}` history window with its
/// real/forecast flags, and every counter. Restoring it yields an engine
/// whose future ticks are bit-identical to the original's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The forecaster, in its concrete serialisable form.
    pub forecaster: foreco_forecast::ForecasterState,
    /// Engine knobs.
    pub config: RecoveryConfig,
    /// History window `{ĉ_j}`, oldest first.
    pub history: Vec<Vec<f64>>,
    /// Per-entry forecast flags (parallel to `history`).
    pub forecast_slots: Vec<bool>,
    /// Forecasts issued since the last on-time delivery.
    pub consecutive_forecasts: usize,
    /// Window-quality signal frozen at the current outage's start.
    pub burst_quality: f64,
    /// Running counters.
    pub stats: RecoveryStats,
}

/// Flat, fixed-capacity ring of the engine's `{ĉ_j}` window: one
/// contiguous `R+1 × dims` `f64` block plus a parallel forecast-flag
/// ring. Pushing past capacity overwrites the oldest row in place, so a
/// steady-state tick touches the allocator exactly zero times — the
/// replacement for the old `VecDeque<Vec<f64>>` whose every window read
/// cloned O(R·dims).
struct CommandRing {
    /// Row-major storage, `cap × dims`.
    data: Box<[f64]>,
    /// Per-row forecast flags, parallel to `data`'s rows.
    flags: Box<[bool]>,
    dims: usize,
    /// Row capacity (`history_len().max(1) + 1`, fixed at construction).
    cap: usize,
    /// Physical index of the oldest row.
    start: usize,
    /// Occupied rows.
    len: usize,
}

impl CommandRing {
    fn new(cap: usize, dims: usize) -> Self {
        assert!(cap >= 1 && dims >= 1, "command ring: degenerate shape");
        Self {
            data: vec![0.0; cap * dims].into_boxed_slice(),
            flags: vec![false; cap].into_boxed_slice(),
            dims,
            cap,
            start: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.start = 0;
        self.len = 0;
    }

    #[inline]
    fn phys(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "command ring: row {i} of {}", self.len);
        (self.start + i) % self.cap
    }

    /// Row `i` (0 = oldest).
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        let p = self.phys(i);
        &self.data[p * self.dims..(p + 1) * self.dims]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let p = self.phys(i);
        &mut self.data[p * self.dims..(p + 1) * self.dims]
    }

    #[inline]
    fn flag(&self, i: usize) -> bool {
        self.flags[self.phys(i)]
    }

    /// The newest row.
    #[inline]
    fn back(&self) -> &[f64] {
        assert!(self.len > 0, "seeded at construction");
        self.row(self.len - 1)
    }

    /// Appends a row, evicting the oldest in place once full.
    fn push(&mut self, row: &[f64], is_forecast: bool) {
        debug_assert_eq!(row.len(), self.dims, "command ring: row width");
        let p = if self.len == self.cap {
            let p = self.start;
            self.start = (self.start + 1) % self.cap;
            p
        } else {
            let p = (self.start + self.len) % self.cap;
            self.len += 1;
            p
        };
        self.data[p * self.dims..(p + 1) * self.dims].copy_from_slice(row);
        self.flags[p] = is_forecast;
    }

    /// Overwrites row `i` (a §VII-C late patch).
    fn set_row(&mut self, i: usize, row: &[f64], is_forecast: bool) {
        let p = self.phys(i);
        self.data[p * self.dims..(p + 1) * self.dims].copy_from_slice(row);
        self.flags[p] = is_forecast;
    }

    /// Borrow view over the occupied rows, oldest first.
    fn view(&self) -> HistoryView<'_> {
        let first = (self.cap - self.start).min(self.len);
        let head = &self.data[self.start * self.dims..(self.start + first) * self.dims];
        let tail = &self.data[..(self.len - first) * self.dims];
        HistoryView::new(head, tail, self.dims)
    }
}

/// The FoReCo recovery engine.
///
/// The steady-state path ([`RecoveryEngine::tick_into`]) is
/// **zero-heap-allocation**: history lives in a flat [`CommandRing`],
/// forecasts are produced through
/// [`Forecaster::forecast_into`] against a borrowed window view, and
/// every intermediate row reuses engine-owned scratch. The allocating
/// [`RecoveryEngine::tick`] remains as a thin compatibility wrapper.
///
/// # Example
///
/// ```
/// use foreco_core::{RecoveryConfig, RecoveryEngine};
/// use foreco_forecast::MovingAverage;
///
/// let mut engine = RecoveryEngine::new(
///     Box::new(MovingAverage::new(2, 1)),
///     RecoveryConfig::default(),
///     vec![0.0],
/// );
/// // On-time commands pass through untouched…
/// let out = engine.tick(Some(vec![0.5]));
/// assert_eq!(out.command, vec![0.5]);
/// assert!(!out.forecast);
/// // …and a miss is concealed with a forecast, written into a
/// // caller-owned buffer on the allocation-free path.
/// let mut cmd = [0.0];
/// assert!(engine.tick_into(None, &mut cmd));
/// ```
pub struct RecoveryEngine {
    forecaster: Box<dyn Forecaster>,
    cfg: RecoveryConfig,
    /// `{ĉ_j}`: the last R commands — real when on time, forecast
    /// otherwise — with their forecast flags, in a flat ring.
    ring: CommandRing,
    /// Forecasts issued since the last on-time delivery.
    consecutive_forecasts: usize,
    /// Fraction of real entries in the window when the current outage
    /// began (drives adaptive damping).
    burst_quality: f64,
    stats: RecoveryStats,
    /// Forecaster workspace, reused every miss.
    scratch: ForecastScratch,
    /// Rebase workspace (anchor prediction + drift), sized `dims`.
    anchor: Vec<f64>,
    delta: Vec<f64>,
}

impl RecoveryEngine {
    /// Creates an engine around a trained forecaster, seeded with the
    /// robot's initial command (the pose both ends agree on at start-up).
    pub fn new(
        forecaster: Box<dyn Forecaster>,
        cfg: RecoveryConfig,
        initial_command: Vec<f64>,
    ) -> Self {
        assert_eq!(
            initial_command.len(),
            forecaster.dims(),
            "recovery: initial command dimension mismatch"
        );
        let dims = forecaster.dims();
        let mut ring = CommandRing::new(forecaster.history_len().max(1) + 1, dims);
        ring.push(&initial_command, false);
        Self {
            forecaster,
            cfg,
            ring,
            consecutive_forecasts: 0,
            burst_quality: 1.0,
            stats: RecoveryStats::default(),
            scratch: ForecastScratch::new(),
            anchor: vec![0.0; dims],
            delta: vec![0.0; dims],
        }
    }

    /// History length `R` of the underlying forecaster.
    pub fn history_len(&self) -> usize {
        self.forecaster.history_len()
    }

    /// Command dimensionality `d` — the required length of
    /// [`RecoveryEngine::tick_into`]'s output buffer.
    pub fn dims(&self) -> usize {
        self.forecaster.dims()
    }

    /// Counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The engine configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// Rewinds the engine to its just-constructed state around a new
    /// initial command: history, counters, and burst tracking all clear.
    /// Lets a service reuse one engine (and its trained forecaster)
    /// across sequential sessions without reallocating.
    ///
    /// # Panics
    /// Panics if `initial_command` does not match the forecaster's
    /// dimensionality.
    pub fn reset(&mut self, initial_command: Vec<f64>) {
        assert_eq!(
            initial_command.len(),
            self.forecaster.dims(),
            "recovery: initial command dimension mismatch"
        );
        self.ring.clear();
        self.ring.push(&initial_command, false);
        self.consecutive_forecasts = 0;
        self.burst_quality = 1.0;
        self.stats = RecoveryStats::default();
    }

    /// Exports the engine's complete state for checkpointing.
    ///
    /// # Errors
    /// [`EngineStateError::UnsupportedForecaster`] when the forecaster
    /// has no serialisable form.
    pub fn snapshot(&self) -> Result<EngineSnapshot, EngineStateError> {
        let forecaster =
            self.forecaster
                .export_state()
                .ok_or(EngineStateError::UnsupportedForecaster {
                    name: self.forecaster.name(),
                })?;
        Ok(EngineSnapshot {
            forecaster,
            config: self.cfg.clone(),
            // The ring serialises through the existing row-per-command
            // snapshot shape — the on-disk format is unchanged.
            history: self.ring.view().to_rows(),
            forecast_slots: (0..self.ring.len()).map(|i| self.ring.flag(i)).collect(),
            consecutive_forecasts: self.consecutive_forecasts,
            burst_quality: self.burst_quality,
            stats: self.stats,
        })
    }

    /// Rebuilds an engine from a snapshot. The restored engine's future
    /// [`RecoveryEngine::tick`] outputs are bit-identical to what the
    /// snapshotted engine would have produced.
    ///
    /// # Errors
    /// [`EngineStateError::Invalid`] when the snapshot violates engine
    /// invariants (empty history, mismatched lengths or dimensions).
    pub fn from_snapshot(snap: EngineSnapshot) -> Result<Self, EngineStateError> {
        let forecaster = snap.forecaster.build();
        Self::from_snapshot_with(snap, forecaster)
    }

    /// [`RecoveryEngine::from_snapshot`] with a caller-supplied
    /// forecaster instance instead of one freshly built from the
    /// snapshot's [`ForecasterState`](foreco_forecast::ForecasterState).
    ///
    /// This is the model-sharing entry: a service that filed the trained
    /// weights in shared storage can restore N same-model engines around
    /// N shallow claims on *one* resident forecaster rather than N deep
    /// copies. The caller guarantees `forecaster` computes identically
    /// to `snap.forecaster.build()` (e.g. it was content-addressed from
    /// the same state); dimensionality and window length are still
    /// validated here.
    ///
    /// # Errors
    /// [`EngineStateError::Invalid`] as [`RecoveryEngine::from_snapshot`].
    pub fn from_snapshot_with(
        snap: EngineSnapshot,
        forecaster: Box<dyn Forecaster>,
    ) -> Result<Self, EngineStateError> {
        let invalid = |reason: String| EngineStateError::Invalid { reason };
        if snap.history.is_empty() {
            return Err(invalid("history must hold at least one command".into()));
        }
        if snap.history.len() != snap.forecast_slots.len() {
            return Err(invalid(format!(
                "history/forecast_slots length mismatch: {} vs {}",
                snap.history.len(),
                snap.forecast_slots.len()
            )));
        }
        if snap.history.len() > forecaster.history_len().max(1) + 1 {
            return Err(invalid(format!(
                "history longer than the engine window: {} > {}",
                snap.history.len(),
                forecaster.history_len().max(1) + 1
            )));
        }
        let dims = forecaster.dims();
        if let Some(bad) = snap.history.iter().find(|c| c.len() != dims) {
            return Err(invalid(format!(
                "history entry of dimension {} in a {dims}-dimensional engine",
                bad.len()
            )));
        }
        let mut ring = CommandRing::new(forecaster.history_len().max(1) + 1, dims);
        for (row, &flag) in snap.history.iter().zip(&snap.forecast_slots) {
            ring.push(row, flag);
        }
        Ok(Self {
            forecaster,
            cfg: snap.config,
            ring,
            consecutive_forecasts: snap.consecutive_forecasts,
            burst_quality: snap.burst_quality,
            stats: snap.stats,
            scratch: ForecastScratch::new(),
            anchor: vec![0.0; dims],
            delta: vec![0.0; dims],
        })
    }

    /// One period tick (allocating compatibility wrapper around
    /// [`RecoveryEngine::tick_into`]).
    ///
    /// `arrived` is `Some(c_i)` when the network delivered the command
    /// within `Ω + τ`, `None` otherwise. Returns what to inject into the
    /// robot drivers.
    pub fn tick(&mut self, arrived: Option<Vec<f64>>) -> TickOutcome {
        let mut command = vec![0.0; self.forecaster.dims()];
        let forecast = self.tick_into(arrived.as_deref(), &mut command);
        TickOutcome { command, forecast }
    }

    /// One period tick on the **zero-allocation** path: the injected
    /// command is written into the caller-owned `out` buffer and the
    /// return value is its forecast flag ([`TickOutcome::forecast`]).
    ///
    /// Outputs are bit-identical to [`RecoveryEngine::tick`]; what
    /// changes is the cost model — no history clone, no per-tick `Vec`:
    /// deliveries copy into the ring, misses forecast through
    /// [`Forecaster::forecast_into`] with engine-owned scratch. The
    /// only allocator traffic left on a miss is whatever a forecaster
    /// without a native `forecast_into` (seq2seq) does in its shim.
    pub fn tick_into(&mut self, arrived: Option<&[f64]>, out: &mut [f64]) -> bool {
        assert_eq!(
            out.len(),
            self.forecaster.dims(),
            "recovery: output dim mismatch"
        );
        self.stats.ticks += 1;
        match arrived {
            Some(cmd) => {
                assert_eq!(
                    cmd.len(),
                    self.forecaster.dims(),
                    "recovery: command dim mismatch"
                );
                self.stats.delivered += 1;
                if self.cfg.history_rebase && self.consecutive_forecasts > 0 {
                    self.rebase_history(cmd);
                }
                self.consecutive_forecasts = 0;
                self.ring.push(cmd, false);
                out.copy_from_slice(cmd);
                false
            }
            None => {
                if self.miss_prologue(out) {
                    return true;
                }
                self.forecaster
                    .forecast_into(&self.ring.view(), &mut self.scratch, out);
                self.finish_forecast(out);
                true
            }
        }
    }

    /// The pre-forecast half of a miss tick: warmup repeat-last while
    /// the window is short, horizon hold once the consecutive-forecast
    /// cap is exhausted. Returns `true` when the miss was fully handled
    /// (out holds the repeated command), `false` when a forecast is due.
    fn miss_prologue(&mut self, out: &mut [f64]) -> bool {
        let r = self.forecaster.history_len();
        if self.ring.len() < r {
            // Not enough history yet: fall back to the Niryo
            // behaviour (repeat last) and record it as a forecast
            // slot so a late command may replace it.
            self.stats.warmup_repeats += 1;
            out.copy_from_slice(self.ring.back());
            self.ring.push(out, true);
            return true;
        }
        if let Some(cap) = self.cfg.max_consecutive_forecasts {
            if self.consecutive_forecasts >= cap {
                // Horizon exhausted: hold the pose instead of
                // extrapolating further into the unknown.
                self.stats.horizon_holds += 1;
                out.copy_from_slice(self.ring.back());
                self.ring.push(out, true);
                return true;
            }
        }
        false
    }

    /// The post-forecast half of a miss tick: adaptive damping, step
    /// clamp, joint limits, counters, history push. `out` holds the raw
    /// forecast on entry and the injected command on exit.
    fn finish_forecast(&mut self, out: &mut [f64]) {
        if let Some(gamma_min) = self.cfg.trend_damping {
            if self.consecutive_forecasts == 0 {
                // Outage starts: freeze the window-quality signal.
                let real = (0..self.ring.len()).filter(|&i| !self.ring.flag(i)).count();
                self.burst_quality = real as f64 / self.ring.len() as f64;
            }
            let gamma_eff = gamma_min + (1.0 - gamma_min) * self.burst_quality;
            let factor = gamma_eff.powi(self.consecutive_forecasts as i32);
            let last = self.ring.back();
            for (v, prev) in out.iter_mut().zip(last) {
                *v = prev + factor * (*v - prev);
            }
        }
        if let Some(step) = self.cfg.max_step {
            let last = self.ring.back();
            for (v, prev) in out.iter_mut().zip(last) {
                *v = v.clamp(prev - step, prev + step);
            }
        }
        if let Some(limits) = &self.cfg.limits {
            for (v, (lo, hi)) in out.iter_mut().zip(limits) {
                *v = v.clamp(*lo, *hi);
            }
        }
        self.stats.forecasts += 1;
        self.consecutive_forecasts += 1;
        self.ring.push(out, true);
    }

    /// A miss tick whose *raw forecast row was computed by the caller* —
    /// the batched-sweep entry. Bit-identical to
    /// [`RecoveryEngine::tick_into`]`(None, out)` **provided** `raw`
    /// equals what `forecast_into` would produce on the engine's current
    /// [`RecoveryEngine::history_view`] (the batched lane guarantees
    /// this by replicating the scalar kernel per member): warmup and
    /// horizon-hold branches still run here, so a conservative caller
    /// that pre-computed a row the engine turns out not to need stays
    /// correct — the row is simply ignored.
    ///
    /// Returns the forecast flag, always `true` (a miss is always
    /// concealed by *something*).
    ///
    /// # Panics
    /// Panics when `raw` or `out` mismatch the engine dimensionality.
    pub fn tick_miss_prepared(&mut self, raw: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(
            out.len(),
            self.forecaster.dims(),
            "recovery: output dim mismatch"
        );
        assert_eq!(
            raw.len(),
            self.forecaster.dims(),
            "recovery: prepared row dim mismatch"
        );
        self.stats.ticks += 1;
        if self.miss_prologue(out) {
            return true;
        }
        out.copy_from_slice(raw);
        self.finish_forecast(out);
        true
    }

    /// True when the next miss tick would run the forecaster (window
    /// saturated, horizon not exhausted) — i.e. when pre-computing a
    /// batched forecast row for [`RecoveryEngine::tick_miss_prepared`]
    /// would actually be consumed rather than short-circuited by the
    /// warmup / horizon-hold prologue.
    pub fn miss_would_forecast(&self) -> bool {
        if self.ring.len() < self.forecaster.history_len() {
            return false;
        }
        match self.cfg.max_consecutive_forecasts {
            Some(cap) => self.consecutive_forecasts < cap,
            None => true,
        }
    }

    /// Borrowed view over the engine's history window (oldest first) —
    /// what the forecaster would consume on the next miss. The batched
    /// sweep gathers lane windows from this view between ticks.
    pub fn history_view(&self) -> HistoryView<'_> {
        self.ring.view()
    }

    /// True when a [`RecoveryEngine::tick`]`(None)` would leave every
    /// non-counter field of the engine bit-identical: the horizon is
    /// exhausted (hold regime), the history window is full, and every
    /// entry already equals the held command with its forecast flag set
    /// — so the hold pushes a clone of the back entry and pops an equal
    /// front entry, a no-op on the window.
    ///
    /// This is the engine half of the *idle fixed point* the service
    /// scheduler parks sessions at: once true, consecutive misses change
    /// only [`RecoveryStats::ticks`] and [`RecoveryStats::horizon_holds`],
    /// which [`RecoveryEngine::apply_idle_holds`] replays in O(1).
    pub fn idle_hold_is_identity(&self) -> bool {
        let cap = match self.cfg.max_consecutive_forecasts {
            Some(cap) => cap,
            // Unbounded extrapolation: every miss runs the forecaster and
            // bumps `consecutive_forecasts` — never an identity.
            None => return false,
        };
        let r = self.forecaster.history_len();
        if self.ring.len() < r || self.consecutive_forecasts < cap {
            return false; // warmup or still forecasting
        }
        if self.ring.len() != r.max(1) + 1 {
            return false; // window not yet at capacity: a push grows it
        }
        if (0..self.ring.len()).any(|i| !self.ring.flag(i)) {
            return false; // a real entry would rotate out of the window
        }
        let held = self.ring.back();
        self.ring
            .view()
            .iter()
            .all(|c| c.iter().zip(held).all(|(a, b)| a.to_bits() == b.to_bits()))
    }

    /// The command a hold tick would re-issue (the back of the history).
    pub fn held_command(&self) -> &[f64] {
        self.ring.back()
    }

    /// Replays the bookkeeping of `n` consecutive idle hold ticks without
    /// running them: exactly what `n` calls of `tick(None)` would do at
    /// a verified idle fixed point ([`RecoveryEngine::idle_hold_is_identity`]).
    /// Counter updates are integer additions, so batching is exact.
    ///
    /// # Panics
    /// Panics (debug) when the engine is not at the idle fixed point —
    /// calling this anywhere else would silently corrupt the
    /// determinism contract.
    pub fn apply_idle_holds(&mut self, n: u64) {
        debug_assert!(
            self.idle_hold_is_identity(),
            "apply_idle_holds outside the idle fixed point"
        );
        self.stats.ticks += n;
        self.stats.horizon_holds += n;
    }

    /// §VII-C extension: a command that missed its tick arrived `age`
    /// ticks late. When [`RecoveryConfig::use_late_commands`] is on and
    /// the corresponding history slot still holds a forecast, replace it
    /// so subsequent forecasts are seeded with truth.
    ///
    /// Returns true when the history was patched.
    pub fn late_command(&mut self, cmd: &[f64], age: usize) -> bool {
        if !self.cfg.use_late_commands || age == 0 || age > self.ring.len() {
            return false;
        }
        let idx = self.ring.len() - age;
        if !self.ring.flag(idx) {
            return false; // slot already holds a real command
        }
        assert_eq!(
            cmd.len(),
            self.forecaster.dims(),
            "recovery: late command dim mismatch"
        );
        self.ring.set_row(idx, cmd, false);
        self.stats.late_patches += 1;
        true
    }

    /// Translates the trailing run of forecast entries so that the next
    /// diff (`incoming − history.back()`) equals the forecaster's own
    /// step prediction rather than the accumulated drift.
    fn rebase_history(&mut self, incoming: &[f64]) {
        // Length of the trailing forecast run (bounded by stored history).
        let run = (0..self.ring.len())
            .rev()
            .take_while(|&i| self.ring.flag(i))
            .count()
            .min(self.consecutive_forecasts);
        if run == 0 {
            return;
        }
        // Drift = incoming − what the recursion would have said for this
        // tick. Predict only when the window suffices; otherwise align the
        // segment end to the incoming command directly.
        if self.ring.len() >= self.forecaster.history_len() {
            self.forecaster
                .forecast_into(&self.ring.view(), &mut self.scratch, &mut self.anchor);
        } else {
            self.anchor.copy_from_slice(self.ring.back());
        }
        for (dst, (c, a)) in self.delta.iter_mut().zip(incoming.iter().zip(&self.anchor)) {
            *dst = c - a;
        }
        let len = self.ring.len();
        for idx in len - run..len {
            for (v, d) in self.ring.row_mut(idx).iter_mut().zip(&self.delta) {
                *v += d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_forecast::MovingAverage;

    /// Pure paper protocol: every deployment safeguard disabled, so the
    /// arithmetic of eqs. 3/8 is exact.
    fn raw_config() -> RecoveryConfig {
        RecoveryConfig {
            max_step: None,
            trend_damping: None,
            history_rebase: false,
            max_consecutive_forecasts: None,
            ..Default::default()
        }
    }

    fn engine(r: usize) -> RecoveryEngine {
        RecoveryEngine::new(
            Box::new(MovingAverage::new(r, 2)),
            raw_config(),
            vec![0.0, 0.0],
        )
    }

    #[test]
    fn on_time_commands_pass_through_unchanged() {
        // Eq. 3's second case: ĉ_i = c_i when Δ(c_i) ≤ τ.
        let mut e = engine(3);
        for i in 0..10 {
            let cmd = vec![i as f64, -(i as f64)];
            let out = e.tick(Some(cmd.clone()));
            assert_eq!(out.command, cmd);
            assert!(!out.forecast);
        }
        assert_eq!(e.stats().delivered, 10);
        assert_eq!(e.stats().forecasts, 0);
    }

    #[test]
    fn miss_triggers_forecast_from_history() {
        let mut e = engine(2);
        e.tick(Some(vec![1.0, 1.0]));
        e.tick(Some(vec![3.0, 3.0]));
        let out = e.tick(None);
        assert!(out.forecast);
        // MA(2) over the last two commands.
        assert_eq!(out.command, vec![2.0, 2.0]);
        assert_eq!(e.stats().forecasts, 1);
    }

    #[test]
    fn forecasts_feed_back_into_history() {
        // Two consecutive misses: the second forecast consumes the first —
        // the error-propagation mechanism of Fig. 9c.
        let mut e = engine(2);
        e.tick(Some(vec![1.0, 0.0]));
        e.tick(Some(vec![3.0, 0.0]));
        let f1 = e.tick(None); // MA(1,3) = 2
        assert_eq!(f1.command[0], 2.0);
        let f2 = e.tick(None); // MA(3,2) = 2.5
        assert_eq!(f2.command[0], 2.5);
    }

    #[test]
    fn warmup_misses_repeat_last() {
        let mut e = engine(5);
        e.tick(Some(vec![7.0, 7.0]));
        let out = e.tick(None); // history (2) < R (5)
        assert_eq!(out.command, vec![7.0, 7.0]);
        assert!(out.forecast);
        assert_eq!(e.stats().warmup_repeats, 1);
        assert_eq!(e.stats().forecasts, 0);
    }

    #[test]
    fn exactly_one_command_per_tick() {
        let mut e = engine(3);
        let mut outputs = 0;
        for i in 0..100 {
            let arrived = if i % 3 == 0 {
                None
            } else {
                Some(vec![0.1, 0.2])
            };
            let _ = e.tick(arrived);
            outputs += 1;
        }
        assert_eq!(outputs, 100);
        assert_eq!(e.stats().ticks, 100);
        let s = e.stats();
        assert_eq!(
            s.delivered + s.forecasts + s.warmup_repeats + s.horizon_holds,
            100
        );
    }

    #[test]
    fn late_commands_ignored_by_default() {
        let mut e = engine(2);
        e.tick(Some(vec![1.0, 1.0]));
        e.tick(Some(vec![2.0, 2.0]));
        e.tick(None);
        assert!(!e.late_command(&[9.0, 9.0], 1));
        assert_eq!(e.stats().late_patches, 0);
    }

    #[test]
    fn late_commands_patch_history_when_enabled() {
        let mut e = RecoveryEngine::new(
            Box::new(MovingAverage::new(2, 2)),
            RecoveryConfig {
                use_late_commands: true,
                ..raw_config()
            },
            vec![0.0, 0.0],
        );
        e.tick(Some(vec![1.0, 1.0]));
        e.tick(Some(vec![3.0, 3.0]));
        e.tick(None); // forecast = (2,2) stored in history
        assert!(e.late_command(&[5.0, 5.0], 1)); // truth arrives late
        assert_eq!(e.stats().late_patches, 1);
        // Next forecast uses (3,5) not (3,2).
        let out = e.tick(None);
        assert_eq!(out.command, vec![4.0, 4.0]);
    }

    #[test]
    fn horizon_cap_switches_to_hold() {
        let mut e = RecoveryEngine::new(
            Box::new(MovingAverage::new(1, 1)),
            RecoveryConfig {
                max_consecutive_forecasts: Some(3),
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![1.0]));
        for _ in 0..3 {
            let out = e.tick(None);
            assert!(out.forecast);
        }
        assert_eq!(e.stats().forecasts, 3);
        // Fourth consecutive miss: horizon exhausted, pose held.
        let held = e.tick(None);
        assert!(held.forecast);
        assert_eq!(e.stats().horizon_holds, 1);
        assert_eq!(e.stats().forecasts, 3);
        // A delivery resets the budget.
        e.tick(Some(vec![2.0]));
        e.tick(None);
        assert_eq!(e.stats().forecasts, 4);
    }

    #[test]
    fn forecasts_clamped_to_limits() {
        // A trend-following forecaster would run past the bound; the
        // configured limits must cap it.
        #[derive(Clone)]
        struct Runaway;
        impl foreco_forecast::Forecaster for Runaway {
            fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
                vec![history.last().unwrap()[0] + 10.0]
            }
            fn history_len(&self) -> usize {
                1
            }
            fn dims(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "runaway"
            }
        }
        let mut e = RecoveryEngine::new(
            Box::new(Runaway),
            RecoveryConfig {
                limits: Some(vec![(-1.0, 1.0)]),
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![0.5]));
        let out = e.tick(None);
        assert_eq!(
            out.command,
            vec![1.0],
            "forecast must be clamped to the joint limit"
        );
        // And the clamped value is what enters the history.
        let out2 = e.tick(None);
        assert_eq!(out2.command, vec![1.0]);
    }

    #[test]
    fn late_patch_rejected_for_real_slots() {
        let mut e = RecoveryEngine::new(
            Box::new(MovingAverage::new(2, 2)),
            RecoveryConfig {
                use_late_commands: true,
                ..raw_config()
            },
            vec![0.0, 0.0],
        );
        e.tick(Some(vec![1.0, 1.0]));
        assert!(
            !e.late_command(&[9.0, 9.0], 1),
            "real command must not be overwritten"
        );
    }

    #[test]
    fn max_step_bounds_forecast_velocity() {
        #[derive(Clone)]
        struct Runaway;
        impl foreco_forecast::Forecaster for Runaway {
            fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
                vec![history.last().unwrap()[0] + 10.0]
            }
            fn history_len(&self) -> usize {
                1
            }
            fn dims(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "runaway"
            }
        }
        let mut e = RecoveryEngine::new(
            Box::new(Runaway),
            RecoveryConfig {
                max_step: Some(0.04),
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![0.5]));
        let out = e.tick(None);
        assert!(
            (out.command[0] - 0.54).abs() < 1e-12,
            "step-clamped to last + 0.04"
        );
    }

    #[derive(Clone)]
    struct UnitStep;
    impl foreco_forecast::Forecaster for UnitStep {
        fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
            vec![history.last().unwrap()[0] + 1.0]
        }
        fn history_len(&self) -> usize {
            1
        }
        fn dims(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "unit-step"
        }
    }

    /// Adaptive damping, clean-window regime: the outage starts with an
    /// all-real window (`q = 1`), so `γ_eff = 1` — the trend is trusted
    /// for the whole burst (the Fig.-9 isolated-burst behaviour).
    #[test]
    fn adaptive_damping_trusts_clean_windows() {
        let mut e = RecoveryEngine::new(
            Box::new(UnitStep),
            RecoveryConfig {
                trend_damping: Some(0.5),
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![0.0]));
        let a = e.tick(None).command[0];
        let b = e.tick(None).command[0];
        let c = e.tick(None).command[0];
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12, "clean window must not damp: {b}");
        assert!((c - 3.0).abs() < 1e-12);
    }

    /// Adaptive damping, polluted-window regime: when the window already
    /// contains forecasts at outage start (`q < 1`), increments shrink
    /// geometrically and the pose converges instead of drifting.
    #[test]
    fn adaptive_damping_converges_on_polluted_windows() {
        let mut e = RecoveryEngine::new(
            Box::new(UnitStep),
            RecoveryConfig {
                trend_damping: Some(0.5),
                history_rebase: false,
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![0.0])); // window all real
        e.tick(None); // forecast enters the window
        e.tick(Some(vec![1.0])); // delivery; window now half forecast
                                 // New outage: q = 0.5 → γ_eff = 0.5 + 0.5·0.5 = 0.75.
        let x0 = e.tick(None).command[0]; // k=0: 1 + 1·1.00 = 2.0
        let x1 = e.tick(None).command[0]; // k=1: 2 + 1·0.75 = 2.75
        let x2 = e.tick(None).command[0]; // k=2: 2.75 + 0.5625
        assert!((x0 - 2.0).abs() < 1e-12, "{x0}");
        assert!((x1 - 2.75).abs() < 1e-12, "{x1}");
        assert!((x2 - 3.3125).abs() < 1e-12, "{x2}");
        // Geometric series: total drift from 1.0 is bounded by 1/(1−0.75).
        for _ in 0..100 {
            let v = e.tick(None).command[0];
            assert!(v < 1.0 + 4.0 + 1e-9, "diverged: {v}");
        }
    }

    #[test]
    fn reset_restores_pristine_state() {
        // A reset engine must be indistinguishable from a fresh one:
        // run a messy mixed sequence, reset, and compare tick-for-tick
        // against a newly constructed engine. Guards the engine-reuse
        // path (`foreco-serve` session recycling) against future fields
        // being forgotten in reset().
        let sequence: Vec<Option<Vec<f64>>> = (0..40)
            .map(|i| {
                if i % 4 == 0 {
                    None
                } else {
                    Some(vec![i as f64 * 0.1, -(i as f64) * 0.05])
                }
            })
            .collect();
        let mut recycled = RecoveryEngine::new(
            Box::new(MovingAverage::new(3, 2)),
            RecoveryConfig::default(),
            vec![9.0, 9.0],
        );
        for arrived in &sequence {
            recycled.tick(arrived.clone());
        }
        recycled.reset(vec![0.0, 0.0]);
        assert_eq!(recycled.stats(), RecoveryStats::default());

        let mut fresh = RecoveryEngine::new(
            Box::new(MovingAverage::new(3, 2)),
            RecoveryConfig::default(),
            vec![0.0, 0.0],
        );
        for arrived in &sequence {
            assert_eq!(recycled.tick(arrived.clone()), fresh.tick(arrived.clone()));
        }
        assert_eq!(recycled.stats(), fresh.stats());
    }

    #[test]
    fn snapshot_restore_is_bit_identical_mid_outage() {
        // Snapshot in the middle of a loss burst (the hardest point:
        // consecutive_forecasts, burst_quality, and forecast slots all
        // live) and verify the restored engine replays the remaining
        // sequence tick-for-tick, bit-for-bit.
        let sequence: Vec<Option<Vec<f64>>> = (0..60)
            .map(|i| {
                if (12..20).contains(&i) || i % 7 == 0 {
                    None
                } else {
                    Some(vec![i as f64 * 0.01, -(i as f64) * 0.02])
                }
            })
            .collect();
        let mut original = RecoveryEngine::new(
            Box::new(MovingAverage::new(3, 2)),
            RecoveryConfig::default(),
            vec![0.0, 0.0],
        );
        for arrived in &sequence[..15] {
            original.tick(arrived.clone());
        }
        let snap = original.snapshot().expect("MA is snapshotable");
        // Round-trip through JSON bytes, as the service would.
        let json = serde_json::to_string(&snap).unwrap();
        let back: EngineSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let mut restored = RecoveryEngine::from_snapshot(back).expect("valid snapshot");
        assert_eq!(restored.stats(), original.stats());
        for arrived in &sequence[15..] {
            let a = original.tick(arrived.clone());
            let b = restored.tick(arrived.clone());
            assert_eq!(a.forecast, b.forecast);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.command), bits(&b.command));
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn snapshot_rejects_unsnapshotable_forecaster() {
        #[derive(Clone)]
        struct Opaque;
        impl foreco_forecast::Forecaster for Opaque {
            fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
                history.last().unwrap().clone()
            }
            fn history_len(&self) -> usize {
                1
            }
            fn dims(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        let e = RecoveryEngine::new(Box::new(Opaque), RecoveryConfig::default(), vec![0.0]);
        match e.snapshot() {
            Err(EngineStateError::UnsupportedForecaster { name }) => assert_eq!(name, "opaque"),
            other => panic!("expected UnsupportedForecaster, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let e = RecoveryEngine::new(
            Box::new(MovingAverage::new(2, 2)),
            RecoveryConfig::default(),
            vec![0.0, 0.0],
        );
        let good = e.snapshot().unwrap();

        let mut empty = good.clone();
        empty.history.clear();
        empty.forecast_slots.clear();
        assert!(RecoveryEngine::from_snapshot(empty).is_err());

        let mut skewed = good.clone();
        skewed.forecast_slots.push(true);
        assert!(RecoveryEngine::from_snapshot(skewed).is_err());

        let mut wrong_dims = good;
        wrong_dims.history[0] = vec![0.0];
        let err = match RecoveryEngine::from_snapshot(wrong_dims) {
            Err(err) => err,
            Ok(_) => panic!("dimension mismatch must be rejected"),
        };
        assert!(matches!(err, EngineStateError::Invalid { .. }));
        // The error type is matchable and boxable for callers/tests.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("invalid engine snapshot"));
    }

    #[test]
    fn idle_hold_identity_detected_and_batched_exactly() {
        // Drive an engine into its hold regime, wait for the window to
        // saturate with the held command, then check: (a) the identity
        // detector fires exactly when a real tick(None) stops changing
        // state, (b) apply_idle_holds(n) equals n eager hold ticks.
        let mut e = RecoveryEngine::new(
            Box::new(MovingAverage::new(2, 2)),
            RecoveryConfig {
                max_consecutive_forecasts: Some(3),
                ..RecoveryConfig::default()
            },
            vec![0.1, -0.2],
        );
        e.tick(Some(vec![0.2, -0.1]));
        e.tick(Some(vec![0.3, 0.0]));
        assert!(!e.idle_hold_is_identity(), "still delivering");
        // Outage: 3 forecasts, then holds refill the 3-entry window.
        let mut idle_at = None;
        for i in 0..20 {
            if e.idle_hold_is_identity() {
                idle_at = Some(i);
                break;
            }
            e.tick(None);
        }
        let idle_at = idle_at.expect("hold regime must become an identity");
        assert!(idle_at >= 3, "cannot be idle before the horizon is spent");

        // (a) once identity, an eager tick really is a state no-op.
        let before = e.snapshot().unwrap();
        let out = e.tick(None);
        let after = e.snapshot().unwrap();
        assert_eq!(out.command.as_slice(), e.held_command());
        assert_eq!(before.history, after.history);
        assert_eq!(before.forecast_slots, after.forecast_slots);
        assert_eq!(before.consecutive_forecasts, after.consecutive_forecasts);
        assert_eq!(
            before.burst_quality.to_bits(),
            after.burst_quality.to_bits()
        );
        assert_eq!(after.stats.ticks, before.stats.ticks + 1);
        assert_eq!(after.stats.horizon_holds, before.stats.horizon_holds + 1);

        // (b) batched bookkeeping == eager ticks, bit for bit.
        let mut eager = RecoveryEngine::from_snapshot(after.clone()).unwrap();
        let mut batched = RecoveryEngine::from_snapshot(after).unwrap();
        for _ in 0..137 {
            eager.tick(None);
        }
        batched.apply_idle_holds(137);
        assert_eq!(eager.stats(), batched.stats());
        assert_eq!(eager.snapshot().unwrap(), batched.snapshot().unwrap());
        // And the fixed point survives: a delivery resumes both equally.
        assert_eq!(
            eager.tick(Some(vec![0.5, 0.5])),
            batched.tick(Some(vec![0.5, 0.5]))
        );
    }

    #[test]
    fn idle_hold_identity_requires_a_horizon() {
        // With unbounded extrapolation every miss runs the forecaster, so
        // the engine must never report an identity (sessions never park).
        let mut e = RecoveryEngine::new(
            Box::new(MovingAverage::new(1, 1)),
            RecoveryConfig {
                max_consecutive_forecasts: None,
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![1.0]));
        for _ in 0..50 {
            e.tick(None);
            assert!(!e.idle_hold_is_identity());
        }
    }

    #[test]
    fn history_rebase_absorbs_correction_jump() {
        // MA(1) = repeat-last forecaster; after two forecasts the truth
        // returns far away. With rebasing the spliced history must not
        // contain the raw jump.
        let mut e = RecoveryEngine::new(
            Box::new(MovingAverage::new(1, 1)),
            RecoveryConfig {
                history_rebase: true,
                ..raw_config()
            },
            vec![0.0],
        );
        e.tick(Some(vec![1.0]));
        e.tick(None); // forecast: 1.0
        e.tick(None); // forecast: 1.0
                      // Truth resumes at 3.0: MA(1) predicts 1.0, so the rebase shifts
                      // the two forecast entries by +2.0 to end at the incoming truth.
        e.tick(Some(vec![3.0]));
        // Next forecast (MA(1)) repeats the real 3.0 — and critically the
        // internal window was left smooth, which we observe through a
        // subsequent MA(2)-style average had R been larger; with MA(1) we
        // simply check the forecast follows truth, not the stale 1.0.
        let out = e.tick(None);
        assert_eq!(out.command, vec![3.0]);
    }

    #[test]
    fn prepared_miss_tick_matches_tick_into() {
        // Twin engines through a mixed delivery/miss trace, one taking
        // the scalar miss path, the other pre-computing the forecast row
        // (as the batched sweep does) and handing it to
        // tick_miss_prepared. Everything must match bit for bit,
        // including warmup/hold ticks where the prepared row is ignored.
        let model_cfg = RecoveryConfig {
            max_consecutive_forecasts: Some(3),
            ..RecoveryConfig::default()
        };
        let mk = || {
            RecoveryEngine::new(
                Box::new(MovingAverage::new(3, 2)),
                model_cfg.clone(),
                vec![0.1, -0.2],
            )
        };
        let (mut scalar, mut batched) = (mk(), mk());
        let spare: Box<dyn Forecaster> = Box::new(MovingAverage::new(3, 2));
        let mut scratch = ForecastScratch::new();
        let mut raw = vec![0.0; 2];
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        let trace: Vec<Option<Vec<f64>>> = vec![
            None, // warmup: window shorter than R
            Some(vec![0.3, 0.1]),
            Some(vec![0.5, 0.2]),
            None, // real forecast
            None,
            None,
            None, // horizon hold (cap 3)
            Some(vec![0.4, 0.0]),
            None,
        ];
        for arrived in trace {
            match arrived {
                Some(cmd) => {
                    let fa = scalar.tick_into(Some(&cmd), &mut a);
                    let fb = batched.tick_into(Some(&cmd), &mut b);
                    assert_eq!(fa, fb);
                }
                None => {
                    // The gather pass is conservative: compute the raw
                    // row whenever the engine *would* forecast.
                    let prepared = batched.miss_would_forecast();
                    if prepared {
                        spare.forecast_into(&batched.history_view(), &mut scratch, &mut raw);
                    }
                    let fa = scalar.tick_into(None, &mut a);
                    let fb = if prepared {
                        batched.tick_miss_prepared(&raw, &mut b)
                    } else {
                        batched.tick_into(None, &mut b)
                    };
                    assert_eq!(fa, fb);
                }
            }
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b));
        }
        assert_eq!(scalar.stats(), batched.stats());
        assert_eq!(
            scalar.snapshot().unwrap().history,
            batched.snapshot().unwrap().history
        );
    }
}
