//! Edge-based FoReCo (§VII-D — the paper's named future work).
//!
//! Instead of forecasting at the robot from a history that mixes real
//! commands and its own forecasts, the **edge** (on the wired side of
//! Fig. 1, where every command is observable) computes forecasts from
//! *real* commands only and **piggybacks** a horizon of them onto each
//! outgoing command. The robot driver then covers a miss at tick `j`
//! with the piggybacked prediction carried by the most recent packet it
//! did receive.
//!
//! Trade-offs the paper anticipates, reproduced here:
//! - forecasts never feed back into their own inputs (no Fig.-9c error
//!   recursion), but
//! - the forecast used during an outage ages with the outage — a miss
//!   gap of `k` ticks must be covered by a `k`-step-ahead prediction
//!   made before the outage, and gaps beyond the piggyback horizon fall
//!   back to repeat-last,
//! - piggybacking multiplies the payload (horizon × command size), which
//!   on a real link would slightly raise the collision/loss probability —
//!   out of scope here, noted in DESIGN.md.

use crate::channel::Arrival;
use crate::metrics::{max_deviation_mm, trajectory_rmse_mm};
use crate::system::ClosedLoopResult;
use foreco_forecast::{forecast_horizon, Forecaster};
use foreco_robot::{ArmModel, DriverConfig, RobotDriver};

/// One over-the-air packet of the edge variant: the command plus the
/// edge's piggybacked forecasts for the next `h` ticks.
#[derive(Debug, Clone)]
pub struct EdgePacket {
    /// The real command `c_i`.
    pub command: Vec<f64>,
    /// Predictions `ĉ_{i+1} … ĉ_{i+h}` from real history only.
    pub forecasts: Vec<Vec<f64>>,
}

/// Builds the edge-side packet stream: every packet carries `horizon`
/// predictions computed from the真 real command history up to it.
///
/// # Panics
/// Panics if `commands` is empty or `horizon == 0`.
pub fn edge_packets(
    forecaster: &dyn Forecaster,
    commands: &[Vec<f64>],
    horizon: usize,
) -> Vec<EdgePacket> {
    assert!(!commands.is_empty(), "edge: no commands");
    assert!(horizon >= 1, "edge: horizon must be ≥ 1");
    let r = forecaster.history_len();
    commands
        .iter()
        .enumerate()
        .map(|(i, cmd)| {
            let forecasts = if i + 1 >= r {
                forecast_horizon(forecaster, &commands[..=i], horizon)
            } else {
                // Not enough history yet: repeat the newest command.
                vec![cmd.clone(); horizon]
            };
            EdgePacket {
                command: cmd.clone(),
                forecasts,
            }
        })
        .collect()
}

/// Closed loop for the edge variant: on a miss at tick `j`, the robot
/// uses prediction `j − i` from the last delivered packet `i` (falling
/// back to repeat-last beyond the horizon or before any delivery).
///
/// # Panics
/// Panics if inputs are empty or lengths mismatch.
pub fn run_closed_loop_edge(
    model: &ArmModel,
    commands: &[Vec<f64>],
    fates: &[Arrival],
    forecaster: &dyn Forecaster,
    horizon: usize,
    driver_cfg: DriverConfig,
) -> ClosedLoopResult {
    assert_eq!(
        commands.len(),
        fates.len(),
        "edge loop: fates/commands mismatch"
    );
    let packets = edge_packets(forecaster, commands, horizon);
    let start = model.clamp(&commands[0]);

    let mut reference = RobotDriver::new(model.clone(), driver_cfg, &start);
    for cmd in commands {
        reference.tick(Some(cmd));
    }
    let defined = reference.into_trajectory();

    let mut driver = RobotDriver::new(model.clone(), driver_cfg, &start);
    let mut misses = 0usize;
    let mut last_delivered: Option<usize> = None;
    for (j, fate) in fates.iter().enumerate() {
        if fate.on_time() {
            last_delivered = Some(j);
            driver.tick(Some(&packets[j].command));
        } else {
            misses += 1;
            match last_delivered {
                Some(i) if j - i - 1 < horizon => {
                    let pred = &packets[i].forecasts[j - i - 1];
                    driver.tick(Some(&model.clamp(pred)));
                }
                _ => {
                    driver.tick(None); // beyond horizon: hold like Niryo
                }
            }
        }
    }
    let executed = driver.into_trajectory();
    let rmse_mm = trajectory_rmse_mm(&executed, &defined);
    let max_dev = max_deviation_mm(&executed, &defined);
    ClosedLoopResult {
        executed,
        defined,
        rmse_mm,
        max_deviation_mm: max_dev,
        misses,
        stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ControlledLossChannel, IdealChannel};
    use crate::system::{run_closed_loop, RecoveryMode};
    use crate::{RecoveryConfig, RecoveryEngine};
    use foreco_forecast::Var;
    use foreco_robot::niryo_one;
    use foreco_teleop::{Dataset, Skill};

    fn fixture() -> (foreco_robot::ArmModel, Vec<Vec<f64>>, Var) {
        let model = niryo_one();
        let train = Dataset::record(Skill::Experienced, 4, 0.02, 61);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 62);
        let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        (model, test.commands, var)
    }

    #[test]
    fn packets_have_horizon_forecasts() {
        let (_, commands, var) = fixture();
        let packets = edge_packets(&var, &commands[..50], 10);
        assert_eq!(packets.len(), 50);
        for p in &packets {
            assert_eq!(p.forecasts.len(), 10);
        }
    }

    #[test]
    fn transparent_on_perfect_channel() {
        let (model, commands, var) = fixture();
        let fates = IdealChannel.fates(commands.len());
        let res =
            run_closed_loop_edge(&model, &commands, &fates, &var, 10, DriverConfig::default());
        assert!(res.rmse_mm < 1e-9);
        assert_eq!(res.misses, 0);
    }

    #[test]
    fn beats_repeat_last_under_bursts() {
        let (model, commands, var) = fixture();
        let fates = ControlledLossChannel::new(8, 0.01, 63).fates(commands.len());
        let base = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        );
        let edge =
            run_closed_loop_edge(&model, &commands, &fates, &var, 16, DriverConfig::default());
        assert!(base.misses > 0);
        assert!(
            edge.rmse_mm < base.rmse_mm,
            "edge {:.2} vs baseline {:.2}",
            edge.rmse_mm,
            base.rmse_mm
        );
    }

    /// §VII-D's motivation: edge forecasts never recurse on themselves,
    /// so under bursts inside the horizon the edge variant should match
    /// or beat the robot-side engine.
    #[test]
    fn edge_competitive_with_local_engine() {
        let (model, commands, var) = fixture();
        let fates = ControlledLossChannel::new(10, 0.008, 64).fates(commands.len());
        let engine = RecoveryEngine::new(
            Box::new(var.clone()),
            RecoveryConfig::for_model(&model),
            model.clamp(&commands[0]),
        );
        let local = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::FoReCo(engine),
            DriverConfig::default(),
        );
        let edge =
            run_closed_loop_edge(&model, &commands, &fates, &var, 16, DriverConfig::default());
        // Same channel; allow a modest band rather than strict dominance —
        // both should be in the same error class.
        assert!(
            edge.rmse_mm < local.rmse_mm * 2.0 + 1.0,
            "edge {:.2} vs local {:.2}",
            edge.rmse_mm,
            local.rmse_mm
        );
    }

    #[test]
    fn beyond_horizon_falls_back_to_hold() {
        let (model, commands, var) = fixture();
        // Bursts longer than the horizon, frequent enough that every
        // RNG stream produces at least one.
        let fates = ControlledLossChannel::new(30, 0.02, 65).fates(commands.len());
        let res = run_closed_loop_edge(&model, &commands, &fates, &var, 5, DriverConfig::default());
        assert!(res.rmse_mm.is_finite());
        assert!(res.misses > 0);
    }
}
