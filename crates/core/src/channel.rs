//! Network channels: what happened to each command on its way to the
//! robot.
//!
//! A [`Channel`] maps a command index stream onto per-command [`Arrival`]
//! outcomes using the paper's timing rule: command `c_i` is generated at
//! `g(c_i) = i·Ω` and consumed by the driver one period later, so it is
//! **on time** iff `Δ(c_i) ≤ Ω + τ` (the Niryo stack has `τ = 0`).
//!
//! Three channels cover the paper's three evaluation set-ups:
//!
//! - [`IdealChannel`] — the Ethernet used to record the datasets (§VI-A);
//! - [`ControlledLossChannel`] — the §VI-D-1 experiment: bursts of
//!   exactly `L` consecutive losses injected at random points;
//! - [`JammedChannel`] — the §V/§VI-C/§VI-D-2 set-up: delays and losses
//!   drawn from the 802.11-with-interference link model of `foreco-wifi`.

use foreco_wifi::{CommandFate, LinkConfig, WirelessLink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-command network outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Delivered within `Ω + τ`: the driver executes it.
    OnTime,
    /// Delivered, but too late to execute; the payload carries the delay
    /// in seconds (used by the §VII-C late-command extension).
    Late(f64),
    /// Never delivered (RTX limit or queue drop).
    Lost,
}

impl Arrival {
    /// True when the robot gets the command in time.
    pub fn on_time(&self) -> bool {
        matches!(self, Arrival::OnTime)
    }
}

/// A source of per-command outcomes.
pub trait Channel {
    /// Outcomes for the next `n` commands (one per period `Ω`).
    fn fates(&mut self, n: usize) -> Vec<Arrival>;

    /// Channel display name for reports.
    fn name(&self) -> &'static str;

    /// Raw RNG state for checkpointing a mid-stream channel, or `None`
    /// for stateless channels. Every in-tree channel's only cross-call
    /// state is its generator, so these four words (plus the original
    /// construction parameters) fully determine all future fates.
    fn rng_state(&self) -> Option<[u64; 4]> {
        None
    }

    /// Restores RNG state exported by [`Channel::rng_state`]. No-op for
    /// stateless channels.
    fn restore_rng(&mut self, state: [u64; 4]) {
        let _ = state;
    }
}

/// Perfect network: everything on time.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdealChannel;

impl Channel for IdealChannel {
    fn fates(&mut self, n: usize) -> Vec<Arrival> {
        vec![Arrival::OnTime; n]
    }
    fn name(&self) -> &'static str {
        "ideal"
    }
}

/// Controlled consecutive-loss injector (§VI-D-1): at random ticks, drop
/// exactly `burst_len` consecutive commands. Between bursts the channel is
/// perfect — this isolates FoReCo's behaviour under known burst lengths
/// (the paper uses 5, 10 and 25).
#[derive(Debug, Clone)]
pub struct ControlledLossChannel {
    /// Consecutive commands lost per burst.
    pub burst_len: usize,
    /// Probability a burst starts at any given (non-bursting) tick.
    pub burst_prob: f64,
    rng: StdRng,
}

impl ControlledLossChannel {
    /// Creates an injector with bursts of `burst_len` losses starting with
    /// probability `burst_prob` per tick.
    ///
    /// # Panics
    /// Panics if `burst_len == 0` or `burst_prob` outside `[0, 1]`.
    pub fn new(burst_len: usize, burst_prob: f64, seed: u64) -> Self {
        assert!(burst_len >= 1, "burst length must be ≥ 1");
        assert!((0.0..=1.0).contains(&burst_prob), "burst prob out of range");
        Self {
            burst_len,
            burst_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Channel for ControlledLossChannel {
    fn fates(&mut self, n: usize) -> Vec<Arrival> {
        let mut out = Vec::with_capacity(n);
        let mut remaining = 0usize;
        for _ in 0..n {
            if remaining > 0 {
                out.push(Arrival::Lost);
                remaining -= 1;
            } else if self.rng.gen::<f64>() < self.burst_prob {
                out.push(Arrival::Lost);
                remaining = self.burst_len - 1;
            } else {
                out.push(Arrival::OnTime);
            }
        }
        out
    }
    fn name(&self) -> &'static str {
        "controlled-loss"
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.rng.state())
    }

    fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

/// The 802.11-under-interference channel: per-command delays and losses
/// from the `foreco-wifi` G/HEXP/1/Q link model, classified with the
/// `Δ ≤ Ω + τ` rule.
pub struct JammedChannel {
    link: WirelessLink,
    tolerance: f64,
}

impl JammedChannel {
    /// Builds the channel from a link configuration and tolerance `τ`.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative.
    pub fn new(link_cfg: LinkConfig, tolerance: f64, seed: u64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self {
            link: WirelessLink::new(link_cfg, seed),
            tolerance,
        }
    }

    /// The analytical solution backing the link (for reports).
    pub fn solution(&self) -> &foreco_wifi::DcfSolution {
        self.link.solution()
    }
}

impl Channel for JammedChannel {
    fn fates(&mut self, n: usize) -> Vec<Arrival> {
        let omega = self.link.config().period;
        let deadline = omega + self.tolerance;
        self.link
            .simulate(n)
            .into_iter()
            .map(|fate| match fate {
                CommandFate::Delivered { delay } if delay <= deadline => Arrival::OnTime,
                CommandFate::Delivered { delay } => Arrival::Late(delay),
                CommandFate::LostRtx | CommandFate::LostQueue => Arrival::Lost,
            })
            .collect()
    }
    fn name(&self) -> &'static str {
        "jammed-802.11"
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.link.rng_state())
    }

    fn restore_rng(&mut self, state: [u64; 4]) {
        self.link.restore_rng(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_wifi::Interference;

    #[test]
    fn ideal_is_all_on_time() {
        let f = IdealChannel.fates(100);
        assert!(f.iter().all(|a| a.on_time()));
    }

    #[test]
    fn controlled_bursts_have_exact_length() {
        let mut ch = ControlledLossChannel::new(5, 0.02, 42);
        let fates = ch.fates(10_000);
        // Measure run lengths of losses.
        let mut runs = Vec::new();
        let mut run = 0usize;
        for f in &fates {
            if matches!(f, Arrival::Lost) {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        assert!(!runs.is_empty(), "no bursts in 10k ticks at 2 %");
        // Every burst is a multiple of 5 (back-to-back bursts can merge).
        for r in &runs {
            assert_eq!(r % 5, 0, "burst of length {r}");
        }
        assert!(runs.iter().filter(|&&r| r == 5).count() > runs.len() / 2);
    }

    #[test]
    fn controlled_channel_deterministic() {
        let a = ControlledLossChannel::new(10, 0.01, 7).fates(1000);
        let b = ControlledLossChannel::new(10, 0.01, 7).fates(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn jammed_channel_classification() {
        let cfg = LinkConfig {
            stations: 25,
            interference: Interference::new(0.05, 100),
            ..LinkConfig::default()
        };
        let mut ch = JammedChannel::new(cfg, 0.0, 3);
        let fates = ch.fates(4000);
        let on_time = fates.iter().filter(|a| a.on_time()).count();
        let late = fates
            .iter()
            .filter(|a| matches!(a, Arrival::Late(_)))
            .count();
        let lost = fates.iter().filter(|a| matches!(a, Arrival::Lost)).count();
        assert_eq!(on_time + late + lost, 4000);
        assert!(late + lost > 0, "heavy jamming must cause misses");
        // Late commands must really be late.
        for f in &fates {
            if let Arrival::Late(d) = f {
                assert!(*d > 0.020);
            }
        }
    }

    #[test]
    fn clean_wireless_is_mostly_on_time() {
        let cfg = LinkConfig {
            stations: 5,
            ..LinkConfig::default()
        };
        let mut ch = JammedChannel::new(cfg, 0.0, 4);
        let fates = ch.fates(2000);
        let on_time = fates.iter().filter(|a| a.on_time()).count();
        assert!(on_time as f64 / 2000.0 > 0.99, "{on_time}/2000 on time");
    }
}
