//! FoReCo — forecast-based recovery for real-time remote control
//! (the paper's §IV, wired to every substrate crate).
//!
//! The heart is the [`RecoveryEngine`]: it sits between the network and
//! the robot drivers, expects one command per period `Ω`, and when the
//! network fails to deliver within the tolerance `τ` it **forecasts** the
//! missing command from the last `R` received-or-forecast commands and
//! injects it — transparently to the controller on one side and the robot
//! on the other (Fig. 3).
//!
//! Around it:
//!
//! - [`channel`]: what the network did to each command — an ideal wire,
//!   a controlled consecutive-loss injector (Fig. 9), or the full 802.11
//!   interference pipeline from `foreco-wifi` (Figs. 8, 10);
//! - [`system`]: the closed loop — operator commands → channel →
//!   recovery (FoReCo or the Niryo repeat-last baseline) → PID robot —
//!   returning executed-vs-defined trajectories;
//! - [`metrics`]: task-space error measures in millimetres (the unit of
//!   every figure in the paper);
//! - [`experiment`]: the seeded Fig.-8 grid runner (interference
//!   probability × duration × robot count, 40 repetitions per cell).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod edge;
pub mod experiment;
pub mod metrics;
mod recovery;
pub mod system;

pub use channel::{Arrival, Channel, ControlledLossChannel, IdealChannel, JammedChannel};
pub use edge::{edge_packets, run_closed_loop_edge, EdgePacket};
pub use recovery::{
    EngineSnapshot, EngineStateError, RecoveryConfig, RecoveryEngine, RecoveryStats, TickOutcome,
};
pub use system::{run_closed_loop, ClosedLoopResult, RecoveryMode};
