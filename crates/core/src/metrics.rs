//! Task-space error metrics in millimetres.
//!
//! Every figure of the paper reports errors in mm of end-effector motion:
//! the trajectory RMSE of Figs. 8–10 and the forecast RMSE of Fig. 7.
//! Joint vectors are mapped through the arm's forward kinematics and
//! compared as 3-D positions.

use foreco_robot::{ArmModel, Sample};

/// RMSE (mm) between two executed trajectories, sample by sample.
///
/// Truncates to the shorter length — trailing samples without a
/// counterpart carry no error signal.
///
/// # Panics
/// Panics if either trajectory is empty.
pub fn trajectory_rmse_mm(a: &[Sample], b: &[Sample]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "trajectory_rmse: empty trajectory"
    );
    let n = a.len().min(b.len());
    let mut acc = 0.0;
    for i in 0..n {
        let pa = &a[i].position_mm;
        let pb = &b[i].position_mm;
        acc += (pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2) + (pa[2] - pb[2]).powi(2);
    }
    (acc / n as f64).sqrt()
}

/// The paper's plotting series: distance from origin (mm) per sample.
pub fn distance_series(samples: &[Sample]) -> Vec<f64> {
    samples.iter().map(|s| s.distance_mm).collect()
}

/// RMSE (mm) between predicted and actual **commands**, both mapped
/// through forward kinematics — the Fig. 7 metric.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn command_rmse_mm(model: &ArmModel, predicted: &[Vec<f64>], actual: &[Vec<f64>]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "command_rmse: length mismatch"
    );
    assert!(!predicted.is_empty(), "command_rmse: empty input");
    let mut acc = 0.0;
    for (p, a) in predicted.iter().zip(actual) {
        let pp = model.chain.forward_mm(p);
        let pa = model.chain.forward_mm(a);
        acc += (pp[0] - pa[0]).powi(2) + (pp[1] - pa[1]).powi(2) + (pp[2] - pa[2]).powi(2);
    }
    (acc / predicted.len() as f64).sqrt()
}

/// Maximum instantaneous deviation (mm) between two trajectories.
pub fn max_deviation_mm(a: &[Sample], b: &[Sample]) -> f64 {
    let n = a.len().min(b.len());
    let mut worst = 0.0f64;
    for i in 0..n {
        let pa = &a[i].position_mm;
        let pb = &b[i].position_mm;
        let d =
            ((pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2) + (pa[2] - pb[2]).powi(2)).sqrt();
        worst = worst.max(d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_robot::{niryo_one, DriverConfig, RobotDriver};

    fn drive(misses: &[usize]) -> Vec<Sample> {
        let model = niryo_one();
        let home = model.home();
        let mut d = RobotDriver::new(model, DriverConfig::default(), &home);
        let mut target = home;
        for i in 0..60 {
            target[0] += 0.02;
            if misses.contains(&i) {
                d.tick(None);
            } else {
                d.tick(Some(&target));
            }
        }
        d.into_trajectory()
    }

    #[test]
    fn identical_trajectories_have_zero_rmse() {
        let a = drive(&[]);
        assert_eq!(trajectory_rmse_mm(&a, &a), 0.0);
        assert_eq!(max_deviation_mm(&a, &a), 0.0);
    }

    #[test]
    fn misses_create_positive_error() {
        let clean = drive(&[]);
        let lossy = drive(&[20, 21, 22, 23, 24, 25, 26, 27, 28, 29]);
        let rmse = trajectory_rmse_mm(&clean, &lossy);
        assert!(
            rmse > 0.5,
            "10-tick freeze should cost ≥ 0.5 mm, got {rmse}"
        );
        assert!(max_deviation_mm(&clean, &lossy) >= rmse);
    }

    #[test]
    fn longer_bursts_cost_more() {
        let clean = drive(&[]);
        let short: Vec<usize> = (20..25).collect();
        let long: Vec<usize> = (20..45).collect();
        let e_short = trajectory_rmse_mm(&clean, &drive(&short));
        let e_long = trajectory_rmse_mm(&clean, &drive(&long));
        assert!(e_long > e_short, "25-loss {e_long} vs 5-loss {e_short}");
    }

    #[test]
    fn command_rmse_zero_for_identical() {
        let model = niryo_one();
        let cmds = vec![model.home(); 5];
        assert_eq!(command_rmse_mm(&model, &cmds, &cmds), 0.0);
    }

    #[test]
    fn command_rmse_scales_with_joint_error() {
        let model = niryo_one();
        let base = vec![model.home(); 5];
        let mut off_small = base.clone();
        let mut off_large = base.clone();
        for c in &mut off_small {
            c[0] += 0.01;
        }
        for c in &mut off_large {
            c[0] += 0.1;
        }
        let e_small = command_rmse_mm(&model, &off_small, &base);
        let e_large = command_rmse_mm(&model, &off_large, &base);
        assert!(e_small > 0.0);
        assert!(e_large > 5.0 * e_small);
    }

    #[test]
    fn distance_series_matches_samples() {
        let a = drive(&[]);
        let s = distance_series(&a);
        assert_eq!(s.len(), a.len());
        assert_eq!(s[0], a[0].distance_mm);
    }
}
