//! The closed remote-control loop (Fig. 3 end to end).
//!
//! One run drives the simulated robot twice with the *same* operator
//! command stream:
//!
//! 1. the **defined trajectory** — every command arrives on time (the
//!    paper's dashed reference line);
//! 2. the **executed trajectory** — commands suffer the channel's fates,
//!    with misses covered either by the Niryo baseline (repeat the last
//!    command) or by FoReCo (forecast and inject).
//!
//! The trajectory RMSE between the two is exactly the metric of Figs.
//! 8–10.

use crate::channel::Arrival;
use crate::metrics::{max_deviation_mm, trajectory_rmse_mm};
use crate::recovery::{RecoveryEngine, RecoveryStats};
use foreco_robot::{ArmModel, DriverConfig, RobotDriver, Sample};

/// How misses are covered.
#[allow(clippy::large_enum_variant)] // constructed a handful of times per run
pub enum RecoveryMode {
    /// Niryo stack behaviour: the driver re-feeds the previous command
    /// ("no forecasting" rows of Fig. 8).
    Baseline,
    /// FoReCo: forecast the missing command and inject it.
    FoReCo(RecoveryEngine),
}

/// Outcome of one closed-loop run.
pub struct ClosedLoopResult {
    /// Trajectory with the lossy channel and the chosen recovery.
    pub executed: Vec<Sample>,
    /// Reference trajectory with a perfect channel.
    pub defined: Vec<Sample>,
    /// RMSE (mm) between the two.
    pub rmse_mm: f64,
    /// Worst instantaneous deviation (mm).
    pub max_deviation_mm: f64,
    /// Number of commands that missed their deadline.
    pub misses: usize,
    /// Recovery-engine counters (FoReCo mode only).
    pub stats: Option<RecoveryStats>,
}

/// Runs the closed loop.
///
/// `commands[i]` is generated at `i·Ω`; `fates[i]` is what the channel did
/// to it. The robot starts at `commands[0]` (both ends agree on the
/// initial pose before teleoperation starts).
///
/// # Panics
/// Panics if `commands` is empty or `fates.len() != commands.len()`.
pub fn run_closed_loop(
    model: &ArmModel,
    commands: &[Vec<f64>],
    fates: &[Arrival],
    mut mode: RecoveryMode,
    driver_cfg: DriverConfig,
) -> ClosedLoopResult {
    assert!(!commands.is_empty(), "closed loop: no commands");
    assert_eq!(
        commands.len(),
        fates.len(),
        "closed loop: fates/commands mismatch"
    );
    let start = model.clamp(&commands[0]);
    let omega = driver_cfg.period;

    // Reference: perfect channel.
    let mut reference = RobotDriver::new(model.clone(), driver_cfg, &start);
    for cmd in commands {
        reference.tick(Some(cmd));
    }
    let defined = reference.into_trajectory();

    // Executed: lossy channel + recovery.
    let mut driver = RobotDriver::new(model.clone(), driver_cfg, &start);
    let mut misses = 0usize;
    // Late commands waiting to (maybe) patch FoReCo's history: (arrival
    // time, tick index, payload).
    let mut pending_late: Vec<(f64, usize, Vec<f64>)> = Vec::new();
    // Reusable output buffer for the engine's zero-allocation tick path.
    let mut injected = vec![0.0; start.len()];
    for (i, (cmd, fate)) in commands.iter().zip(fates).enumerate() {
        let now = (i as f64 + 1.0) * omega; // driver consumption instant
        match &mut mode {
            RecoveryMode::Baseline => {
                if fate.on_time() {
                    driver.tick(Some(cmd));
                } else {
                    misses += 1;
                    driver.tick(None);
                }
            }
            RecoveryMode::FoReCo(engine) => {
                // Deliver late commands that have arrived by now (§VII-C
                // extension; a no-op unless the engine enables it).
                pending_late.retain(|(arrives, idx, payload)| {
                    if *arrives <= now {
                        let age = i.saturating_sub(*idx);
                        engine.late_command(payload, age);
                        false
                    } else {
                        true
                    }
                });
                if fate.on_time() {
                    engine.tick_into(Some(cmd), &mut injected);
                } else {
                    misses += 1;
                    if let Arrival::Late(delay) = fate {
                        pending_late.push((i as f64 * omega + delay, i, cmd.clone()));
                    }
                    engine.tick_into(None, &mut injected);
                }
                driver.tick(Some(&injected));
            }
        }
    }
    let executed = driver.into_trajectory();
    let rmse_mm = trajectory_rmse_mm(&executed, &defined);
    let max_dev = max_deviation_mm(&executed, &defined);
    let stats = match mode {
        RecoveryMode::FoReCo(engine) => Some(engine.stats()),
        RecoveryMode::Baseline => None,
    };
    ClosedLoopResult {
        executed,
        defined,
        rmse_mm,
        max_deviation_mm: max_dev,
        misses,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ControlledLossChannel, IdealChannel};
    use crate::recovery::RecoveryConfig;
    use foreco_forecast::Var;
    use foreco_robot::niryo_one;
    use foreco_teleop::{Dataset, Skill};

    fn setup() -> (foreco_robot::ArmModel, Vec<Vec<f64>>, Var) {
        let model = niryo_one();
        let train = Dataset::record(Skill::Experienced, 3, 0.02, 50);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 777);
        let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        (model, test.commands, var)
    }

    fn engine(var: &Var, first: &[f64]) -> RecoveryEngine {
        RecoveryEngine::new(
            Box::new(var.clone()),
            RecoveryConfig::default(),
            first.to_vec(),
        )
    }

    #[test]
    fn perfect_channel_gives_zero_error() {
        let (model, commands, _) = setup();
        let fates = IdealChannel.fates(commands.len());
        let res = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        );
        assert_eq!(res.misses, 0);
        assert!(res.rmse_mm < 1e-9, "rmse {}", res.rmse_mm);
    }

    #[test]
    fn foreco_on_perfect_channel_is_transparent() {
        // With no misses FoReCo must never interfere (eq. 3 pass-through).
        let (model, commands, var) = setup();
        let fates = IdealChannel.fates(commands.len());
        let res = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::FoReCo(engine(&var, &commands[0])),
            DriverConfig::default(),
        );
        assert!(res.rmse_mm < 1e-9);
        let stats = res.stats.unwrap();
        assert_eq!(stats.forecasts, 0);
        assert_eq!(stats.delivered as usize, commands.len());
    }

    /// The paper's core claim, miniature: under loss bursts FoReCo beats
    /// the repeat-last baseline.
    #[test]
    fn foreco_beats_baseline_under_bursts() {
        let (model, commands, var) = setup();
        let fates = ControlledLossChannel::new(10, 0.01, 9).fates(commands.len());
        let base = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        );
        let fore = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::FoReCo(engine(&var, &commands[0])),
            DriverConfig::default(),
        );
        assert!(base.misses > 0);
        assert_eq!(base.misses, fore.misses, "same channel, same misses");
        assert!(
            fore.rmse_mm < base.rmse_mm,
            "FoReCo {:.2} mm should beat baseline {:.2} mm",
            fore.rmse_mm,
            base.rmse_mm
        );
    }

    #[test]
    fn stats_account_for_every_tick() {
        let (model, commands, var) = setup();
        let fates = ControlledLossChannel::new(5, 0.02, 11).fates(commands.len());
        let res = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::FoReCo(engine(&var, &commands[0])),
            DriverConfig::default(),
        );
        let s = res.stats.unwrap();
        assert_eq!(s.ticks as usize, commands.len());
        assert_eq!(
            (s.delivered + s.forecasts + s.warmup_repeats + s.horizon_holds) as usize,
            commands.len()
        );
        assert_eq!(
            (s.forecasts + s.warmup_repeats + s.horizon_holds) as usize,
            res.misses
        );
    }

    #[test]
    fn executed_and_defined_same_length() {
        let (model, commands, _) = setup();
        let fates = IdealChannel.fates(commands.len());
        let res = run_closed_loop(
            &model,
            &commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        );
        assert_eq!(res.executed.len(), commands.len());
        assert_eq!(res.defined.len(), commands.len());
    }
}
