//! The Fig.-8 experiment grid: interference probability × burst duration
//! × robot count, with seeded repetitions.
//!
//! Each cell of the paper's heatmaps is the **average trajectory RMSE of
//! 40 simulations**, with and without FoReCo, for one (p_if, T_if, robots)
//! triple; the command stream is the inexperienced operator's trajectory.
//! [`run_cell`] reproduces one cell; the `fig8_interference_heatmap` bench
//! sweeps the full grid.

use crate::channel::{Channel, JammedChannel};
use crate::recovery::{RecoveryConfig, RecoveryEngine};
use crate::system::{run_closed_loop, RecoveryMode};
use foreco_forecast::Forecaster;
use foreco_linalg::stats::Running;
use foreco_robot::{ArmModel, DriverConfig};
use foreco_wifi::{Interference, LinkConfig};
use serde::{Deserialize, Serialize};

/// One grid cell's configuration.
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Robots sharing the wireless medium (paper: 5 / 15 / 25).
    pub robots: usize,
    /// Interference source (paper grid: p_if ∈ {1, 2.5, 5} %,
    /// T_if ∈ {10, 50, 100} slots).
    pub interference: Interference,
    /// Seeded repetitions to average (paper: 40).
    pub repetitions: usize,
    /// Tolerance `τ` (paper: 0 for the Niryo stack).
    pub tolerance: f64,
    /// Base RNG seed; repetition `k` uses `seed + k`.
    pub seed: u64,
}

/// Averages over one cell's repetitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Mean RMSE (mm) with the repeat-last baseline.
    pub no_forecast_rmse_mm: f64,
    /// Mean RMSE (mm) with FoReCo.
    pub foreco_rmse_mm: f64,
    /// Std-dev across repetitions (baseline).
    pub no_forecast_std: f64,
    /// Std-dev across repetitions (FoReCo).
    pub foreco_std: f64,
    /// Mean fraction of commands that missed their deadline.
    pub miss_rate: f64,
    /// Repetitions actually run.
    pub repetitions: usize,
}

impl CellResult {
    /// The paper's headline ratio (×18 at 25 robots): baseline / FoReCo.
    pub fn improvement_factor(&self) -> f64 {
        if self.foreco_rmse_mm <= 0.0 {
            return f64::INFINITY;
        }
        self.no_forecast_rmse_mm / self.foreco_rmse_mm
    }
}

/// Runs one grid cell: `repetitions` seeded channel realisations, each
/// evaluated with both recovery modes over the same fates.
///
/// `make_forecaster` builds a fresh trained forecaster per repetition
/// (engines are consumed by the closed loop).
///
/// # Panics
/// Panics if `commands` is empty or `repetitions == 0`.
pub fn run_cell(
    model: &ArmModel,
    commands: &[Vec<f64>],
    make_forecaster: &dyn Fn() -> Box<dyn Forecaster>,
    cfg: &CellConfig,
) -> CellResult {
    assert!(!commands.is_empty(), "run_cell: no commands");
    assert!(
        cfg.repetitions >= 1,
        "run_cell: need at least one repetition"
    );
    let driver_cfg = DriverConfig::default();
    let mut base_acc = Running::new();
    let mut fore_acc = Running::new();
    let mut miss_acc = Running::new();
    for rep in 0..cfg.repetitions {
        let link_cfg = LinkConfig {
            stations: cfg.robots,
            interference: cfg.interference,
            ..LinkConfig::default()
        };
        let mut channel =
            JammedChannel::new(link_cfg, cfg.tolerance, cfg.seed.wrapping_add(rep as u64));
        let fates = channel.fates(commands.len());

        let base = run_closed_loop(model, commands, &fates, RecoveryMode::Baseline, driver_cfg);
        let engine = RecoveryEngine::new(
            make_forecaster(),
            RecoveryConfig::for_model(model),
            model.clamp(&commands[0]),
        );
        let fore = run_closed_loop(
            model,
            commands,
            &fates,
            RecoveryMode::FoReCo(engine),
            driver_cfg,
        );
        base_acc.push(base.rmse_mm);
        fore_acc.push(fore.rmse_mm);
        miss_acc.push(base.misses as f64 / commands.len() as f64);
    }
    CellResult {
        no_forecast_rmse_mm: base_acc.mean(),
        foreco_rmse_mm: fore_acc.mean(),
        no_forecast_std: base_acc.std_dev(),
        foreco_std: fore_acc.std_dev(),
        miss_rate: miss_acc.mean(),
        repetitions: cfg.repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_forecast::Var;
    use foreco_robot::niryo_one;
    use foreco_teleop::{Dataset, Skill};

    /// Miniature Fig.-8 cell (reduced repetitions/commands for test time):
    /// FoReCo must beat the baseline and the miss rate must be material.
    #[test]
    fn heavy_interference_cell_shape() {
        let model = niryo_one();
        let train = Dataset::record(Skill::Experienced, 6, 0.02, 1);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 2);
        let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        let cell = CellConfig {
            robots: 25,
            interference: Interference::new(0.05, 100),
            repetitions: 3,
            tolerance: 0.0,
            seed: 1000,
        };
        let commands = &test.commands[..600.min(test.commands.len())];
        let res = run_cell(&model, commands, &|| Box::new(var.clone()), &cell);
        assert!(res.miss_rate > 0.05, "miss rate {}", res.miss_rate);
        assert!(
            res.foreco_rmse_mm < res.no_forecast_rmse_mm,
            "FoReCo {} vs baseline {}",
            res.foreco_rmse_mm,
            res.no_forecast_rmse_mm
        );
        assert!(res.improvement_factor() > 1.0);
        assert_eq!(res.repetitions, 3);
    }

    /// A clean cell: both modes near zero error and ~no misses.
    #[test]
    fn clean_cell_is_benign() {
        let model = niryo_one();
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 3);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 4);
        let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
        let cell = CellConfig {
            robots: 5,
            interference: Interference::none(),
            repetitions: 2,
            tolerance: 0.0,
            seed: 42,
        };
        let commands = &test.commands[..400.min(test.commands.len())];
        let res = run_cell(&model, commands, &|| Box::new(var.clone()), &cell);
        assert!(res.miss_rate < 0.01, "miss rate {}", res.miss_rate);
        assert!(res.no_forecast_rmse_mm < 5.0);
        assert!(res.foreco_rmse_mm < 5.0);
    }

    #[test]
    fn determinism_across_runs() {
        let model = niryo_one();
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 5);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 6);
        let var = Var::fit_differenced(&train, 4, 1e-6).unwrap();
        let cell = CellConfig {
            robots: 15,
            interference: Interference::new(0.025, 50),
            repetitions: 2,
            tolerance: 0.0,
            seed: 77,
        };
        let commands = &test.commands[..300];
        let a = run_cell(&model, commands, &|| Box::new(var.clone()), &cell);
        let b = run_cell(&model, commands, &|| Box::new(var.clone()), &cell);
        assert_eq!(a.no_forecast_rmse_mm, b.no_forecast_rmse_mm);
        assert_eq!(a.foreco_rmse_mm, b.foreco_rmse_mm);
    }
}
