//! Property-based tests for the neural substrate.

use foreco_nn::{mse, Activation, Adam, AdamConfig, Dense, Lstm, LstmState};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Activations are monotone non-decreasing everywhere we use them.
    #[test]
    fn activations_monotone(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            prop_assert!(act.apply(lo) <= act.apply(hi) + 1e-12);
        }
    }

    /// MSE is non-negative, zero iff equal, symmetric.
    #[test]
    fn mse_properties(
        a in proptest::collection::vec(-5.0f64..5.0, 1..10),
        shift in 0.001f64..1.0,
    ) {
        let (zero, _) = mse(&a, &a);
        prop_assert_eq!(zero, 0.0);
        let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let (ab, _) = mse(&a, &b);
        let (ba, _) = mse(&b, &a);
        prop_assert!(ab > 0.0);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    /// A dense layer is positively homogeneous-ish: doubling the weights
    /// of an Identity layer doubles the output (linearity check).
    #[test]
    fn dense_identity_is_linear(x in proptest::collection::vec(-2.0f64..2.0, 3)) {
        let mut d = Dense::new(3, 2, Activation::Identity, 5);
        d.b = vec![0.0, 0.0];
        let y1 = d.infer(&x);
        let x2: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let y2 = d.infer(&x2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((2.0 * a - b).abs() < 1e-9);
        }
    }

    /// LSTM inference is bounded with tanh squash: |h| ≤ 1 elementwise.
    #[test]
    fn lstm_tanh_hidden_bounded(
        xs in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 2), 1..20),
    ) {
        let l = Lstm::new(2, 4, Activation::Tanh, Activation::Tanh, 9);
        let mut state = LstmState::zeros(4);
        for x in &xs {
            state = l.infer_step(x, &state);
            prop_assert!(state.h.iter().all(|h| h.abs() <= 1.0 + 1e-12));
        }
    }

    /// Adam always moves against the gradient sign on the first step.
    #[test]
    fn adam_first_step_direction(g in -100.0f64..100.0) {
        prop_assume!(g.abs() > 1e-6);
        let mut adam = Adam::new(AdamConfig::default(), 1);
        let mut w = vec![0.0];
        adam.begin_step();
        adam.update(0, &mut w, &[g]);
        prop_assert!(w[0] * g < 0.0, "w moved {} with gradient {g}", w[0]);
    }
}
