//! Many-to-one seq2seq model (§IV-B of the paper).
//!
//! The paper feeds a sequence of past commands `{ĉ_j}` into an **encoder**
//! LSTM (200 units), hands the encoded representation to a **decoder** LSTM
//! (30 units), and reads the next command `ĉ_{i+1}` out of the decoder —
//! ReLU activations throughout (eqs. 6–7). The output head is a linear
//! layer mapping the decoder's hidden state to the `d` joint coordinates.
//! Trained with Adam on batched MSE (eq. 10).

use crate::{mse, Activation, Adam, AdamConfig, Dense, Lstm, LstmState};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the [`Seq2Seq`] model. Defaults mirror the paper:
/// 200-unit encoder, 30-unit decoder, ReLU activations, Adam with
/// `η = 0.001, β₁ = 0.9, β₂ = 0.999, ε = 1e-7`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Seq2SeqConfig {
    /// Command dimensionality `d` (6 for the Niryo One).
    pub input_dim: usize,
    /// Encoder LSTM width (paper: 200).
    pub encoder_hidden: usize,
    /// Decoder LSTM width (paper: 30).
    pub decoder_hidden: usize,
    /// Activation for LSTM candidate/cell outputs (paper: ReLU).
    pub activation: Activation,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Mini-batch size `B_i` of eq. 10.
    pub batch_size: usize,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Self {
            input_dim: 6,
            encoder_hidden: 200,
            decoder_hidden: 30,
            activation: Activation::Relu,
            adam: AdamConfig::default(),
            batch_size: 64,
        }
    }
}

/// Per-epoch training summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss of each epoch, in input units².
    pub epoch_losses: Vec<f64>,
    /// Total number of Adam steps taken.
    pub steps: u64,
}

/// Encoder–decoder LSTM forecaster.
pub struct Seq2Seq {
    encoder: Lstm,
    decoder: Lstm,
    head: Dense,
    adam: Adam,
    cfg: Seq2SeqConfig,
}

// Adam tensor indices.
const T_ENC_WX: usize = 0;
const T_ENC_WH: usize = 1;
const T_ENC_B: usize = 2;
const T_DEC_WX: usize = 3;
const T_DEC_WH: usize = 4;
const T_DEC_B: usize = 5;
const T_HEAD_W: usize = 6;
const T_HEAD_B: usize = 7;

impl Seq2Seq {
    /// Builds the model with seeded Xavier initialisation.
    pub fn new(cfg: &Seq2SeqConfig, seed: u64) -> Self {
        let encoder = Lstm::new(
            cfg.input_dim,
            cfg.encoder_hidden,
            cfg.activation,
            cfg.activation,
            seed,
        );
        let decoder = Lstm::new(
            cfg.encoder_hidden,
            cfg.decoder_hidden,
            cfg.activation,
            cfg.activation,
            seed.wrapping_add(1),
        );
        let head = Dense::new(
            cfg.decoder_hidden,
            cfg.input_dim,
            Activation::Identity,
            seed.wrapping_add(2),
        );
        Self {
            encoder,
            decoder,
            head,
            adam: Adam::new(cfg.adam, 8),
            cfg: cfg.clone(),
        }
    }

    /// Total number of trainable weights `|w|`.
    ///
    /// With the paper's shapes (d=6, encoder 200, decoder 30) this yields
    /// 193 506 — same order as the paper's reported 163 803; the exact
    /// count depends on unstated architectural details (e.g. whether the
    /// decoder consumes `h` or a projection).
    pub fn num_params(&self) -> usize {
        self.encoder.num_params() + self.decoder.num_params() + self.head.num_params()
    }

    /// Predicts the next command from a history window (inference only).
    ///
    /// # Panics
    /// Panics if `history` is empty or items mismatch `input_dim`.
    pub fn predict(&self, history: &[Vec<f64>]) -> Vec<f64> {
        assert!(!history.is_empty(), "seq2seq: empty history");
        let enc = self.encoder.infer_sequence(history);
        let dec = self
            .decoder
            .infer_step(&enc.h, &LstmState::zeros(self.cfg.decoder_hidden));
        self.head.infer(&dec.h)
    }

    /// Forward pass that caches intermediates (used by training).
    pub fn forward(&mut self, history: &[Vec<f64>]) -> Vec<f64> {
        assert!(!history.is_empty(), "seq2seq: empty history");
        let enc_hs = self.encoder.forward_sequence(history);
        let enc_h = enc_hs.last().expect("nonempty").clone();
        let dec_hs = self.decoder.forward_sequence(&[enc_h]);
        self.head.forward(&dec_hs[0])
    }

    /// Backward pass from an output gradient; accumulates all gradients.
    fn backward(&mut self, dy: &[f64], seq_len: usize) {
        let dh_dec = self.head.backward(dy);
        let d_enc_h = self.decoder.backward_sequence(&[dh_dec]);
        let mut dhs = vec![vec![0.0; self.cfg.encoder_hidden]; seq_len];
        *dhs.last_mut().expect("nonempty") = d_enc_h.into_iter().next().expect("one step");
        self.encoder.backward_sequence(&dhs);
    }

    fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.decoder.zero_grad();
        self.head.zero_grad();
    }

    fn apply_adam(&mut self) {
        self.adam.begin_step();
        let enc_dwx = self.encoder.dwx.as_slice().to_vec();
        self.adam
            .update(T_ENC_WX, self.encoder.wx.as_mut_slice(), &enc_dwx);
        let enc_dwh = self.encoder.dwh.as_slice().to_vec();
        self.adam
            .update(T_ENC_WH, self.encoder.wh.as_mut_slice(), &enc_dwh);
        let enc_db = self.encoder.db.clone();
        self.adam.update(T_ENC_B, &mut self.encoder.b, &enc_db);
        let dec_dwx = self.decoder.dwx.as_slice().to_vec();
        self.adam
            .update(T_DEC_WX, self.decoder.wx.as_mut_slice(), &dec_dwx);
        let dec_dwh = self.decoder.dwh.as_slice().to_vec();
        self.adam
            .update(T_DEC_WH, self.decoder.wh.as_mut_slice(), &dec_dwh);
        let dec_db = self.decoder.db.clone();
        self.adam.update(T_DEC_B, &mut self.decoder.b, &dec_db);
        let head_dw = self.head.dw.as_slice().to_vec();
        self.adam
            .update(T_HEAD_W, self.head.w.as_mut_slice(), &head_dw);
        let head_db = self.head.db.clone();
        self.adam.update(T_HEAD_B, &mut self.head.b, &head_db);
    }

    /// Trains on `(history, next-command)` pairs for `epochs` epochs of
    /// mini-batched Adam (eq. 10: the loss is averaged over the batch).
    ///
    /// Samples are consumed in the given order (callers shuffle if they
    /// want; deterministic order keeps experiments reproducible).
    pub fn train(&mut self, samples: &[(Vec<Vec<f64>>, Vec<f64>)], epochs: usize) -> TrainReport {
        assert!(!samples.is_empty(), "seq2seq train: no samples");
        let batch = self.cfg.batch_size.max(1);
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            for chunk in samples.chunks(batch) {
                self.zero_grad();
                let mut batch_loss = 0.0;
                for (hist, target) in chunk {
                    let pred = self.forward(hist);
                    let (loss, mut dy) = mse(&pred, target);
                    batch_loss += loss;
                    // Average the gradient over the batch (eq. 10 divides
                    // by B_i).
                    for g in &mut dy {
                        *g /= chunk.len() as f64;
                    }
                    self.backward(&dy, hist.len());
                }
                epoch_loss += batch_loss;
                self.apply_adam();
            }
            epoch_losses.push(epoch_loss / samples.len() as f64);
        }
        TrainReport {
            epoch_losses,
            steps: self.adam.steps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_dim: 2,
            encoder_hidden: 8,
            decoder_hidden: 4,
            activation: Activation::Tanh,
            adam: AdamConfig {
                learning_rate: 0.01,
                ..Default::default()
            },
            batch_size: 4,
        }
    }

    #[test]
    fn predict_shape_and_determinism() {
        let m1 = Seq2Seq::new(&tiny_cfg(), 5);
        let m2 = Seq2Seq::new(&tiny_cfg(), 5);
        let hist = vec![vec![0.1, 0.2], vec![0.3, -0.1], vec![0.0, 0.4]];
        let p1 = m1.predict(&hist);
        let p2 = m2.predict(&hist);
        assert_eq!(p1.len(), 2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn forward_matches_predict() {
        let mut m = Seq2Seq::new(&tiny_cfg(), 6);
        let hist = vec![vec![0.5, -0.5], vec![0.2, 0.2]];
        let a = m.predict(&hist);
        let b = m.forward(&hist);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_scale_param_count() {
        let cfg = Seq2SeqConfig::default();
        let m = Seq2Seq::new(&cfg, 0);
        // Same order of magnitude as the paper's |w| = 163 803.
        assert!(
            m.num_params() > 100_000 && m.num_params() < 300_000,
            "{}",
            m.num_params()
        );
    }

    /// Whole-model gradient check through encoder, decoder and head.
    #[test]
    fn end_to_end_gradients_match_finite_differences() {
        let cfg = Seq2SeqConfig {
            input_dim: 2,
            encoder_hidden: 3,
            decoder_hidden: 2,
            activation: Activation::Tanh,
            adam: AdamConfig::default(),
            batch_size: 1,
        };
        let mut m = Seq2Seq::new(&cfg, 21);
        let hist = vec![vec![0.4, -0.3], vec![0.1, 0.8]];
        let target = vec![0.5, -0.2];

        m.zero_grad();
        let pred = m.forward(&hist);
        let (_, dy) = mse(&pred, &target);
        m.backward(&dy, hist.len());

        let loss_of = |m: &Seq2Seq| mse(&m.predict(&hist), &target).0;
        let eps = 1e-6;

        // Spot-check a handful of entries in each tensor.
        let checks: Vec<(String, f64, f64)> = {
            let mut v = Vec::new();
            for (r, c) in [(0, 0), (3, 1), (7, 0)] {
                let mut mp = clone_model(&m, &cfg);
                mp.encoder.wx[(r, c)] += eps;
                let mut mm = clone_model(&m, &cfg);
                mm.encoder.wx[(r, c)] -= eps;
                let numeric = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
                v.push((format!("enc.wx[{r},{c}]"), numeric, m.encoder.dwx[(r, c)]));
            }
            for (r, c) in [(0, 0), (5, 2)] {
                let mut mp = clone_model(&m, &cfg);
                mp.decoder.wx[(r, c)] += eps;
                let mut mm = clone_model(&m, &cfg);
                mm.decoder.wx[(r, c)] -= eps;
                let numeric = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
                v.push((format!("dec.wx[{r},{c}]"), numeric, m.decoder.dwx[(r, c)]));
            }
            for (r, c) in [(0, 0), (1, 1)] {
                let mut mp = clone_model(&m, &cfg);
                mp.head.w[(r, c)] += eps;
                let mut mm = clone_model(&m, &cfg);
                mm.head.w[(r, c)] -= eps;
                let numeric = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
                v.push((format!("head.w[{r},{c}]"), numeric, m.head.dw[(r, c)]));
            }
            v
        };
        for (name, numeric, analytic) in checks {
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "{name}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    fn clone_model(m: &Seq2Seq, cfg: &Seq2SeqConfig) -> Seq2Seq {
        let mut c = Seq2Seq::new(cfg, 0);
        c.encoder = m.encoder.clone();
        c.decoder = m.decoder.clone();
        c.head = m.head.clone();
        c
    }

    /// Training on a linear next-step rule must reduce the loss.
    #[test]
    fn training_reduces_loss() {
        let mut m = Seq2Seq::new(&tiny_cfg(), 33);
        // Next value = previous value (constant sequences).
        let mut samples = Vec::new();
        for k in 0..16 {
            let v = -0.8 + 0.1 * k as f64;
            let hist = vec![vec![v, -v]; 3];
            samples.push((hist, vec![v, -v]));
        }
        let report = m.train(&samples, 60);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.5,
            "loss did not halve: first {first}, last {last}"
        );
    }
}
