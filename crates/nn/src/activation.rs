//! Scalar activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Activation function selector.
///
/// The paper's seq2seq uses ReLU (`φ(x) = max(0, x)`, §IV-B footnote 2) on
/// the recurrent units; standard LSTM gates stay sigmoidal regardless of
/// this choice (they must squash to `(0, 1)` to act as gates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — the paper's choice for encoder/decoder outputs.
    Relu,
    /// Hyperbolic tangent — the classical LSTM candidate/output squash.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// Applies the function to `x`.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative at pre-activation `x` whose output was `y = apply(x)`.
    ///
    /// Passing both lets sigmoid/tanh reuse the cheaper output form
    /// (`y(1−y)`, `1−y²`) while ReLU uses the pre-activation sign.
    #[inline]
    pub fn deriv(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }

    /// Applies the function element-wise, returning outputs.
    pub fn apply_slice(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_matches_paper_footnote() {
        // φ(x) = 0 for x ≤ 0 and x otherwise.
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(100.0) > 0.999);
        assert!(s.apply(-100.0) < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Activation::Tanh;
        for x in [-2.0, -0.5, 0.3, 1.7] {
            assert!((t.apply(x) + t.apply(-x)).abs() < 1e-12);
        }
    }

    /// Finite-difference check of every derivative.
    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            for &x in &[-1.5, -0.3, 0.4, 2.0] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.deriv(x, y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
