//! The Adam optimiser exactly as the paper states it (§IV-C, eqs. 11–13).
//!
//! At each step, with gradient `g`:
//!
//! ```text
//! m ← β₁ m + (1 − β₁) g                       (eq. 12)
//! v ← β₂ v + (1 − β₂) g²                      (eq. 13)
//! w ← w − η · m̂ / (√v̂ + ε)                    (eq. 11, bias-corrected)
//! ```
//!
//! with `m̂ = m / (1 − β₁ᵗ)` and `v̂ = v / (1 − β₂ᵗ)`.

use serde::{Deserialize, Serialize};

/// Adam hyper-parameters. Defaults are the paper's §VI-B choices
/// (`η = 0.001, β₁ = 0.9, β₂ = 0.999, ε = 1e-7`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size η.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability term ε.
    pub epsilon: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-7,
        }
    }
}

/// Per-tensor Adam state.
#[derive(Debug, Clone)]
struct TensorState {
    m: Vec<f64>,
    v: Vec<f64>,
}

/// Adam optimiser managing an arbitrary set of parameter tensors,
/// addressed by a caller-chosen index.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    step: u64,
    states: Vec<Option<TensorState>>,
}

impl Adam {
    /// Creates an optimiser for at most `num_tensors` parameter tensors.
    pub fn new(cfg: AdamConfig, num_tensors: usize) -> Self {
        Self {
            cfg,
            step: 0,
            states: vec![None; num_tensors],
        }
    }

    /// Advances the global step counter. Call once per optimisation step,
    /// before updating the step's tensors.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Number of completed `begin_step` calls.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one Adam update to tensor `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range, lengths mismatch a previous call
    /// for the same tensor, or `begin_step` was never called.
    pub fn update(&mut self, idx: usize, weights: &mut [f64], grads: &[f64]) {
        assert!(
            self.step > 0,
            "Adam::begin_step must be called before update"
        );
        assert_eq!(
            weights.len(),
            grads.len(),
            "adam: weight/grad length mismatch"
        );
        let state = self.states[idx].get_or_insert_with(|| TensorState {
            m: vec![0.0; weights.len()],
            v: vec![0.0; weights.len()],
        });
        assert_eq!(
            state.m.len(),
            weights.len(),
            "adam: tensor {idx} changed size"
        );

        let AdamConfig {
            learning_rate,
            beta1,
            beta2,
            epsilon,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.step as i32);
        let bc2 = 1.0 - beta2.powi(self.step as i32);
        for i in 0..weights.len() {
            let g = grads[i];
            state.m[i] = beta1 * state.m[i] + (1.0 - beta1) * g;
            state.v[i] = beta2 * state.v[i] + (1.0 - beta2) * g * g;
            let m_hat = state.m[i] / bc1;
            let v_hat = state.v[i] / bc2;
            weights[i] -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(w) = (w − 3)² must converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut adam = Adam::new(
            AdamConfig {
                learning_rate: 0.1,
                ..Default::default()
            },
            1,
        );
        let mut w = vec![0.0];
        for _ in 0..500 {
            adam.begin_step();
            let g = vec![2.0 * (w[0] - 3.0)];
            adam.update(0, &mut w, &g);
        }
        assert!((w[0] - 3.0).abs() < 1e-3, "w = {}", w[0]);
    }

    /// First step with bias correction moves by ≈ learning_rate against the
    /// gradient sign (the canonical Adam property).
    #[test]
    fn first_step_magnitude_is_learning_rate() {
        let cfg = AdamConfig::default();
        let mut adam = Adam::new(cfg, 1);
        let mut w = vec![1.0];
        adam.begin_step();
        adam.update(0, &mut w, &[42.0]);
        let step = 1.0 - w[0];
        assert!((step - cfg.learning_rate).abs() < 1e-6, "step = {step}");
    }

    /// Invariance to gradient scale (after warm-up): the paper picked Adam
    /// precisely because it is "invariant to small gradients" (§IV-C).
    /// Exact invariance needs |g| ≫ ε; ε = 1e-7 so 1e-3 is the smallest
    /// scale checked here.
    #[test]
    fn scale_invariance_of_step_direction() {
        for scale in [1e-3, 1.0, 1e6] {
            let mut adam = Adam::new(AdamConfig::default(), 1);
            let mut w = vec![0.0];
            for _ in 0..10 {
                adam.begin_step();
                adam.update(0, &mut w, &[scale]);
            }
            // Ten constant-gradient steps each move ≈ lr regardless of scale.
            assert!(
                (w[0] + 10.0 * 1e-3).abs() < 1e-4,
                "scale {scale}: w = {}",
                w[0]
            );
        }
    }

    #[test]
    fn separate_tensors_have_separate_state() {
        let mut adam = Adam::new(AdamConfig::default(), 2);
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        adam.begin_step();
        adam.update(0, &mut a, &[1.0]);
        adam.update(1, &mut b, &[-1.0]);
        assert!(a[0] < 0.0 && b[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_without_begin_step_panics() {
        let mut adam = Adam::new(AdamConfig::default(), 1);
        let mut w = vec![0.0];
        adam.update(0, &mut w, &[1.0]);
    }
}
