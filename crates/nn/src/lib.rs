//! Minimal neural-network substrate for the FoReCo reproduction.
//!
//! The paper's third forecaster is a **seq2seq** model (§IV-B): an LSTM
//! encoder of 200 units and an LSTM decoder of 30 units with ReLU
//! activations, trained with **Adam** (§IV-C, eqs. 10–13) on mean squared
//! error. The original prototype used TensorFlow 2.1; this crate is the
//! from-scratch replacement: dense and LSTM layers with full
//! backpropagation-through-time, the Adam optimiser exactly as written in
//! the paper, and a many-to-one [`Seq2Seq`] model.
//!
//! Everything is `f64`, deterministic (seeded init and batching), and free
//! of `unsafe`. Gradients are verified against finite differences in the
//! test suite — the only way to trust a hand-written BPTT.
//!
//! # Example
//!
//! ```
//! use foreco_nn::{Seq2Seq, Seq2SeqConfig};
//!
//! // Tiny model mapping a 2-step sequence of 2-vectors to a 2-vector.
//! let cfg = Seq2SeqConfig {
//!     input_dim: 2,
//!     encoder_hidden: 8,
//!     decoder_hidden: 4,
//!     ..Seq2SeqConfig::default()
//! };
//! let mut model = Seq2Seq::new(&cfg, 42);
//! let seq = vec![vec![0.1, 0.2], vec![0.3, 0.4]];
//! let out = model.forward(&seq);
//! assert_eq!(out.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod adam;
mod dense;
mod lstm;
mod seq2seq;

pub use activation::Activation;
pub use adam::{Adam, AdamConfig};
pub use dense::Dense;
pub use lstm::{Lstm, LstmState};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig, TrainReport};

/// Mean-squared-error loss and its gradient w.r.t. the prediction.
///
/// Returns `(loss, dloss/dpred)` with `loss = Σ (p − t)² / n`.
///
/// # Panics
/// Panics if lengths differ or `pred` is empty.
pub fn mse(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    assert!(!pred.is_empty(), "mse: empty prediction");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(pred.len());
    for (p, t) in pred.iter().zip(target) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_on_match() {
        let (l, g) = mse(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(l, 0.0);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn mse_hand_checked() {
        let (l, g) = mse(&[3.0, 0.0], &[1.0, 0.0]);
        assert!((l - 2.0).abs() < 1e-12); // (3-1)^2 / 2
        assert!((g[0] - 2.0).abs() < 1e-12); // 2*2/2
        assert_eq!(g[1], 0.0);
    }
}
