//! LSTM layer with full backpropagation-through-time.
//!
//! Standard LSTM cell (gates `i, f, o` sigmoidal; candidate `g` and cell
//! output squash configurable so the paper's ReLU variant, §IV-B eqs. 6–7,
//! can be expressed):
//!
//! ```text
//! z   = Wx·x_t + Wh·h_{t-1} + b          (z split into i|f|g|o blocks)
//! i_t = σ(z_i)   f_t = σ(z_f)   o_t = σ(z_o)   g_t = φ(z_g)
//! c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//! h_t = o_t ⊙ ψ(c_t)
//! ```
//!
//! `φ` is [`Lstm::candidate_activation`], `ψ` is [`Lstm::cell_activation`].

use crate::Activation;
use foreco_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hidden/cell state pair of an LSTM.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state `h` (length = hidden dim).
    pub h: Vec<f64>,
    /// Cell state `c` (length = hidden dim).
    pub c: Vec<f64>,
}

impl LstmState {
    /// Zero state for a given hidden dimension.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Per-timestep forward cache needed by BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    zg: Vec<f64>,
    c: Vec<f64>,
    psi_c: Vec<f64>,
}

/// An LSTM layer processing sequences of `input_dim`-vectors into
/// `hidden_dim`-vectors.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, `4H x I` (gate blocks stacked `i|f|g|o`).
    pub wx: Matrix,
    /// Recurrent weights, `4H x H`.
    pub wh: Matrix,
    /// Bias, length `4H`. Forget-gate block initialised to 1 (standard
    /// remedy against early vanishing gradients).
    pub b: Vec<f64>,
    /// Candidate activation φ (paper: ReLU).
    pub candidate_activation: Activation,
    /// Cell-output activation ψ (paper: ReLU; classical: tanh).
    pub cell_activation: Activation,
    /// Accumulated gradient for `wx`.
    pub dwx: Matrix,
    /// Accumulated gradient for `wh`.
    pub dwh: Matrix,
    /// Accumulated gradient for `b`.
    pub db: Vec<f64>,
    hidden: usize,
    input: usize,
    caches: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-uniform weights, deterministic in `seed`.
    pub fn new(
        input_dim: usize,
        hidden_dim: usize,
        candidate_activation: Activation,
        cell_activation: Activation,
        seed: u64,
    ) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0,
            "lstm: dims must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let lim_x = (6.0 / (input_dim + hidden_dim) as f64).sqrt();
        let lim_h = (6.0 / (2 * hidden_dim) as f64).sqrt();
        let wx = Matrix::from_fn(4 * hidden_dim, input_dim, |_, _| {
            rng.gen_range(-lim_x..lim_x)
        });
        let wh = Matrix::from_fn(4 * hidden_dim, hidden_dim, |_, _| {
            rng.gen_range(-lim_h..lim_h)
        });
        let mut b = vec![0.0; 4 * hidden_dim];
        // Forget-gate bias = 1.
        for bf in b.iter_mut().take(2 * hidden_dim).skip(hidden_dim) {
            *bf = 1.0;
        }
        Self {
            dwx: Matrix::zeros(4 * hidden_dim, input_dim),
            dwh: Matrix::zeros(4 * hidden_dim, hidden_dim),
            db: vec![0.0; 4 * hidden_dim],
            wx,
            wh,
            b,
            candidate_activation,
            cell_activation,
            hidden: hidden_dim,
            input: input_dim,
            caches: Vec::new(),
        }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.wx.rows() * self.wx.cols() + self.wh.rows() * self.wh.cols() + self.b.len()
    }

    /// One inference step without touching training caches.
    pub fn infer_step(&self, x: &[f64], state: &LstmState) -> LstmState {
        let (_, new_state) = self.step_internal(x, state);
        new_state
    }

    fn step_internal(&self, x: &[f64], state: &LstmState) -> (StepCache, LstmState) {
        assert_eq!(x.len(), self.input, "lstm: input dim mismatch");
        let h_dim = self.hidden;
        // z = Wx x + Wh h + b
        let mut z = self.wx.matvec(x);
        let zh = self.wh.matvec(&state.h);
        for (zi, (zhi, bi)) in z.iter_mut().zip(zh.iter().zip(&self.b)) {
            *zi += zhi + bi;
        }
        let sig = Activation::Sigmoid;
        let mut i = Vec::with_capacity(h_dim);
        let mut f = Vec::with_capacity(h_dim);
        let mut g = Vec::with_capacity(h_dim);
        let mut o = Vec::with_capacity(h_dim);
        let mut zg = Vec::with_capacity(h_dim);
        for k in 0..h_dim {
            i.push(sig.apply(z[k]));
            f.push(sig.apply(z[h_dim + k]));
            zg.push(z[2 * h_dim + k]);
            g.push(self.candidate_activation.apply(z[2 * h_dim + k]));
            o.push(sig.apply(z[3 * h_dim + k]));
        }
        let mut c = Vec::with_capacity(h_dim);
        let mut psi_c = Vec::with_capacity(h_dim);
        let mut h = Vec::with_capacity(h_dim);
        for k in 0..h_dim {
            let ck = f[k] * state.c[k] + i[k] * g[k];
            let pk = self.cell_activation.apply(ck);
            c.push(ck);
            psi_c.push(pk);
            h.push(o[k] * pk);
        }
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            i,
            f,
            g,
            o,
            zg,
            c: c.clone(),
            psi_c,
        };
        (cache, LstmState { h, c })
    }

    /// Runs the whole sequence from a zero state, caching every step for
    /// [`Lstm::backward_sequence`]. Returns the hidden state after each
    /// step.
    pub fn forward_sequence(&mut self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.caches.clear();
        let mut state = LstmState::zeros(self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            let (cache, next) = self.step_internal(x, &state);
            self.caches.push(cache);
            state = next;
            hs.push(state.h.clone());
        }
        hs
    }

    /// Inference over a sequence from a zero state; returns the final state.
    pub fn infer_sequence(&self, xs: &[Vec<f64>]) -> LstmState {
        let mut state = LstmState::zeros(self.hidden);
        for x in xs {
            state = self.infer_step(x, &state);
        }
        state
    }

    /// Backpropagation through time.
    ///
    /// `dhs[t]` is `dL/dh_t` coming from outside (zero for steps without a
    /// loss). Accumulates weight gradients and returns `dL/dx_t` per step.
    ///
    /// # Panics
    /// Panics if `dhs.len()` differs from the cached sequence length.
    #[allow(clippy::needless_range_loop)] // r walks dz against four weight blocks
    pub fn backward_sequence(&mut self, dhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            dhs.len(),
            self.caches.len(),
            "lstm backward: length mismatch"
        );
        let h_dim = self.hidden;
        let sig = Activation::Sigmoid;
        let mut dxs = vec![vec![0.0; self.input]; dhs.len()];
        let mut dh_carry = vec![0.0; h_dim];
        let mut dc_carry = vec![0.0; h_dim];

        for t in (0..self.caches.len()).rev() {
            let cache = &self.caches[t];
            // Total gradient flowing into h_t.
            let mut dh = dhs[t].clone();
            for (d, carry) in dh.iter_mut().zip(&dh_carry) {
                *d += carry;
            }
            let mut dz = vec![0.0; 4 * h_dim];
            let mut dc_next = vec![0.0; h_dim];
            for k in 0..h_dim {
                let o = cache.o[k];
                let psi = cache.psi_c[k];
                // h = o ψ(c)
                let do_ = dh[k] * psi;
                let dc = dc_carry[k] + dh[k] * o * self.cell_activation.deriv(cache.c[k], psi);
                // c = f c_prev + i g
                let di = dc * cache.g[k];
                let df = dc * cache.c_prev[k];
                let dg = dc * cache.i[k];
                dc_next[k] = dc * cache.f[k];
                dz[k] = di * sig.deriv(0.0, cache.i[k]);
                dz[h_dim + k] = df * sig.deriv(0.0, cache.f[k]);
                dz[2 * h_dim + k] = dg * self.candidate_activation.deriv(cache.zg[k], cache.g[k]);
                dz[3 * h_dim + k] = do_ * sig.deriv(0.0, cache.o[k]);
            }
            // Parameter gradients: dW += dz ⊗ input, db += dz.
            for r in 0..4 * h_dim {
                let dzr = dz[r];
                if dzr == 0.0 {
                    continue;
                }
                self.db[r] += dzr;
                let dwx_row = self.dwx.row_mut(r);
                for (j, xj) in cache.x.iter().enumerate() {
                    dwx_row[j] += dzr * xj;
                }
                let dwh_row = self.dwh.row_mut(r);
                for (j, hj) in cache.h_prev.iter().enumerate() {
                    dwh_row[j] += dzr * hj;
                }
            }
            // dx = Wxᵀ dz ; dh_prev = Whᵀ dz.
            let dx = &mut dxs[t];
            let mut dh_prev = vec![0.0; h_dim];
            for r in 0..4 * h_dim {
                let dzr = dz[r];
                if dzr == 0.0 {
                    continue;
                }
                let wx_row = self.wx.row(r);
                for (j, w) in wx_row.iter().enumerate() {
                    dx[j] += dzr * w;
                }
                let wh_row = self.wh.row(r);
                for (j, w) in wh_row.iter().enumerate() {
                    dh_prev[j] += dzr * w;
                }
            }
            dh_carry = dh_prev;
            dc_carry = dc_next;
        }
        dxs
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dwx = Matrix::zeros(4 * self.hidden, self.input);
        self.dwh = Matrix::zeros(4 * self.hidden, self.hidden);
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> Lstm {
        Lstm::new(2, 3, Activation::Tanh, Activation::Tanh, seed)
    }

    #[test]
    fn shapes_and_param_count() {
        let l = Lstm::new(6, 200, Activation::Relu, Activation::Relu, 1);
        // 4H(I + H + 1) = 800 * 207 = 165_600, close to the paper's
        // |w| = 163 803 total for the full model.
        assert_eq!(l.num_params(), 4 * 200 * (6 + 200 + 1));
    }

    #[test]
    fn forward_deterministic() {
        let mut a = tiny(9);
        let mut b = tiny(9);
        let xs = vec![vec![0.1, -0.2], vec![0.3, 0.4]];
        assert_eq!(a.forward_sequence(&xs), b.forward_sequence(&xs));
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = tiny(11);
        let xs = vec![vec![0.5, 0.5], vec![-0.5, 0.1], vec![0.0, 0.9]];
        let hs = l.forward_sequence(&xs);
        let state = l.infer_sequence(&xs);
        assert_eq!(hs.last().unwrap(), &state.h);
    }

    #[test]
    fn zero_input_zero_state_keeps_small_output() {
        let l = tiny(5);
        let s = l.infer_step(&[0.0, 0.0], &LstmState::zeros(3));
        // With zero input and state, h = σ(b_o) ⊙ ψ(σ(b_i)·φ(0)); since
        // φ(0) = 0 the cell stays 0 and so does h.
        assert!(s.h.iter().all(|&h| h.abs() < 1e-12));
        assert!(s.c.iter().all(|&c| c.abs() < 1e-12));
    }

    /// The canonical test for hand-written BPTT: loss gradients w.r.t. every
    /// parameter tensor must match central finite differences on a
    /// multi-step sequence (so the recurrent path is exercised).
    #[test]
    fn bptt_matches_finite_differences() {
        for (cand, cell) in [
            (Activation::Tanh, Activation::Tanh),
            (Activation::Relu, Activation::Relu),
        ] {
            let mut l = Lstm::new(2, 3, cand, cell, 77);
            let xs = vec![vec![0.3, -0.4], vec![0.8, 0.2], vec![-0.6, 0.5]];
            let target = vec![0.2, -0.1, 0.4];

            let loss_of = |l: &Lstm| -> f64 {
                let s = l.infer_sequence(&xs);
                crate::mse(&s.h, &target).0
            };

            l.zero_grad();
            let hs = l.forward_sequence(&xs);
            let (_, dy) = crate::mse(hs.last().unwrap(), &target);
            let mut dhs = vec![vec![0.0; 3]; xs.len()];
            *dhs.last_mut().unwrap() = dy;
            let dxs = l.backward_sequence(&dhs);

            let eps = 1e-6;
            // wx gradient check (sample every entry — the matrix is small).
            for r in 0..l.wx.rows() {
                for c in 0..l.wx.cols() {
                    let mut lp = l.clone();
                    lp.wx[(r, c)] += eps;
                    let mut lm = l.clone();
                    lm.wx[(r, c)] -= eps;
                    let numeric = (loss_of(&lp) - loss_of(&lm)) / (2.0 * eps);
                    assert!(
                        (numeric - l.dwx[(r, c)]).abs() < 1e-5,
                        "{cand:?} dwx[{r},{c}]: numeric {numeric} vs {}",
                        l.dwx[(r, c)]
                    );
                }
            }
            // wh gradient check.
            for r in 0..l.wh.rows() {
                for c in 0..l.wh.cols() {
                    let mut lp = l.clone();
                    lp.wh[(r, c)] += eps;
                    let mut lm = l.clone();
                    lm.wh[(r, c)] -= eps;
                    let numeric = (loss_of(&lp) - loss_of(&lm)) / (2.0 * eps);
                    assert!(
                        (numeric - l.dwh[(r, c)]).abs() < 1e-5,
                        "{cand:?} dwh[{r},{c}]: numeric {numeric} vs {}",
                        l.dwh[(r, c)]
                    );
                }
            }
            // bias gradient check.
            for k in 0..l.b.len() {
                let mut lp = l.clone();
                lp.b[k] += eps;
                let mut lm = l.clone();
                lm.b[k] -= eps;
                let numeric = (loss_of(&lp) - loss_of(&lm)) / (2.0 * eps);
                assert!(
                    (numeric - l.db[k]).abs() < 1e-5,
                    "{cand:?} db[{k}]: numeric {numeric} vs {}",
                    l.db[k]
                );
            }
            // input gradient check.
            for t in 0..xs.len() {
                for j in 0..2 {
                    let mut xp = xs.clone();
                    xp[t][j] += eps;
                    let mut xm = xs.clone();
                    xm[t][j] -= eps;
                    let lp = {
                        let s = l.infer_sequence(&xp);
                        crate::mse(&s.h, &target).0
                    };
                    let lm = {
                        let s = l.infer_sequence(&xm);
                        crate::mse(&s.h, &target).0
                    };
                    let numeric = (lp - lm) / (2.0 * eps);
                    assert!(
                        (numeric - dxs[t][j]).abs() < 1e-5,
                        "{cand:?} dx[{t}][{j}]: numeric {numeric} vs {}",
                        dxs[t][j]
                    );
                }
            }
        }
    }

    /// A single LSTM unit can be trained (via plain SGD here) to remember
    /// the first element of a sequence — smoke test that gradients point in
    /// a useful direction.
    #[test]
    fn learns_to_remember_first_input() {
        let mut l = Lstm::new(1, 4, Activation::Tanh, Activation::Tanh, 3);
        let mut readout = crate::Dense::new(4, 1, Activation::Identity, 4);
        let seqs: Vec<(Vec<Vec<f64>>, f64)> = vec![
            (vec![vec![1.0], vec![0.0], vec![0.0]], 1.0),
            (vec![vec![-1.0], vec![0.0], vec![0.0]], -1.0),
        ];
        let lr = 0.05;
        let mut last_loss = f64::INFINITY;
        for epoch in 0..400 {
            let mut total = 0.0;
            for (xs, y) in &seqs {
                l.zero_grad();
                readout.zero_grad();
                let hs = l.forward_sequence(xs);
                let pred = readout.forward(hs.last().unwrap());
                let (loss, dy) = crate::mse(&pred, &[*y]);
                total += loss;
                let dh = readout.backward(&dy);
                let mut dhs = vec![vec![0.0; 4]; xs.len()];
                *dhs.last_mut().unwrap() = dh;
                l.backward_sequence(&dhs);
                // SGD step.
                for r in 0..l.dwx.rows() {
                    for c in 0..l.dwx.cols() {
                        let g = l.dwx[(r, c)];
                        l.wx[(r, c)] -= lr * g;
                    }
                }
                for r in 0..l.dwh.rows() {
                    for c in 0..l.dwh.cols() {
                        let g = l.dwh[(r, c)];
                        l.wh[(r, c)] -= lr * g;
                    }
                }
                for k in 0..l.b.len() {
                    let g = l.db[k];
                    l.b[k] -= lr * g;
                }
                for r in 0..readout.dw.rows() {
                    for c in 0..readout.dw.cols() {
                        let g = readout.dw[(r, c)];
                        readout.w[(r, c)] -= lr * g;
                    }
                }
                for k in 0..readout.db.len() {
                    let g = readout.db[k];
                    readout.b[k] -= lr * g;
                }
            }
            if epoch == 399 {
                last_loss = total;
            }
        }
        assert!(last_loss < 0.05, "final loss {last_loss}");
    }
}
