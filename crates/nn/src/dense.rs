//! Fully connected layer `y = φ(W x + b)` with backprop.

use crate::Activation;
use foreco_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense (fully connected) layer.
///
/// Weights are `out_dim x in_dim`; forward caches the input and
/// pre-activation so [`Dense::backward`] can compute exact gradients.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out_dim x in_dim`.
    pub w: Matrix,
    /// Bias vector, length `out_dim`.
    pub b: Vec<f64>,
    /// Activation applied to `W x + b`.
    pub activation: Activation,
    /// Accumulated weight gradient (same shape as `w`).
    pub dw: Matrix,
    /// Accumulated bias gradient.
    pub db: Vec<f64>,
    // forward cache
    cache_x: Vec<f64>,
    cache_z: Vec<f64>,
    cache_y: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Xavier/Glorot-uniform initialisation,
    /// deterministic in `seed`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense: dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = Matrix::from_fn(out_dim, in_dim, |_, _| rng.gen_range(-limit..limit));
        Self {
            dw: Matrix::zeros(out_dim, in_dim),
            db: vec![0.0; out_dim],
            b: vec![0.0; out_dim],
            w,
            activation,
            cache_x: Vec::new(),
            cache_z: Vec::new(),
            cache_y: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass, caching intermediates for [`Dense::backward`].
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "dense forward: input dim mismatch");
        let mut z = self.w.matvec(x);
        for (zi, bi) in z.iter_mut().zip(&self.b) {
            *zi += bi;
        }
        let y = self.activation.apply_slice(&z);
        self.cache_x = x.to_vec();
        self.cache_z = z;
        self.cache_y = y.clone();
        y
    }

    /// Inference-only forward pass (no cache mutation).
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "dense infer: input dim mismatch");
        let mut z = self.w.matvec(x);
        for (zi, bi) in z.iter_mut().zip(&self.b) {
            *zi += bi;
        }
        self.activation.apply_slice(&z)
    }

    /// Backward pass: takes `dL/dy`, accumulates `dw`/`db`, returns `dL/dx`.
    ///
    /// # Panics
    /// Panics if called before `forward` or with a mismatched gradient.
    #[allow(clippy::needless_range_loop)] // i indexes dy, db and two matrices
    pub fn backward(&mut self, dy: &[f64]) -> Vec<f64> {
        assert_eq!(
            dy.len(),
            self.out_dim(),
            "dense backward: grad dim mismatch"
        );
        assert_eq!(
            self.cache_x.len(),
            self.in_dim(),
            "dense backward before forward"
        );
        let mut dx = vec![0.0; self.in_dim()];
        for i in 0..self.out_dim() {
            let dz = dy[i] * self.activation.deriv(self.cache_z[i], self.cache_y[i]);
            self.db[i] += dz;
            let dw_row = self.dw.row_mut(i);
            for (j, xj) in self.cache_x.iter().enumerate() {
                dw_row[j] += dz * xj;
            }
            let w_row = self.w.row(i);
            for (j, wj) in w_row.iter().enumerate() {
                dx[j] += dz * wj;
            }
        }
        dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw = Matrix::zeros(self.out_dim(), self.in_dim());
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mse;

    #[test]
    fn forward_identity_activation_is_affine() {
        let mut d = Dense::new(2, 2, Activation::Identity, 1);
        d.w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        d.b = vec![0.5, -0.5];
        assert_eq!(d.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut d = Dense::new(3, 2, Activation::Tanh, 7);
        let x = [0.2, -0.4, 0.9];
        assert_eq!(d.forward(&x), d.infer(&x));
    }

    /// Gradient check: analytic dW, db, dx against central finite differences.
    #[test]
    fn gradients_match_finite_differences() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut layer = Dense::new(3, 2, act, 99);
            let x = [0.3, -0.8, 0.5];
            let target = [0.1, -0.2];
            // Analytic.
            layer.zero_grad();
            let y = layer.forward(&x);
            let (_, dy) = mse(&y, &target);
            let dx = layer.backward(&dy);

            let eps = 1e-6;
            // dW check.
            for i in 0..2 {
                for j in 0..3 {
                    let mut lp = layer.clone();
                    lp.w[(i, j)] += eps;
                    let (l_plus, _) = mse(&lp.infer(&x), &target);
                    let mut lm = layer.clone();
                    lm.w[(i, j)] -= eps;
                    let (l_minus, _) = mse(&lm.infer(&x), &target);
                    let numeric = (l_plus - l_minus) / (2.0 * eps);
                    assert!(
                        (numeric - layer.dw[(i, j)]).abs() < 1e-5,
                        "{act:?} dW[{i},{j}]: numeric {numeric} vs analytic {}",
                        layer.dw[(i, j)]
                    );
                }
            }
            // db check.
            for i in 0..2 {
                let mut lp = layer.clone();
                lp.b[i] += eps;
                let (l_plus, _) = mse(&lp.infer(&x), &target);
                let mut lm = layer.clone();
                lm.b[i] -= eps;
                let (l_minus, _) = mse(&lm.infer(&x), &target);
                let numeric = (l_plus - l_minus) / (2.0 * eps);
                assert!((numeric - layer.db[i]).abs() < 1e-5, "{act:?} db[{i}]");
            }
            // dx check.
            for j in 0..3 {
                let mut xp = x;
                xp[j] += eps;
                let (l_plus, _) = mse(&layer.infer(&xp), &target);
                let mut xm = x;
                xm[j] -= eps;
                let (l_minus, _) = mse(&layer.infer(&xm), &target);
                let numeric = (l_plus - l_minus) / (2.0 * eps);
                assert!((numeric - dx[j]).abs() < 1e-5, "{act:?} dx[{j}]");
            }
        }
    }

    #[test]
    fn zero_grad_resets() {
        let mut d = Dense::new(2, 2, Activation::Identity, 5);
        let y = d.forward(&[1.0, 1.0]);
        let (_, dy) = mse(&y, &[0.0, 0.0]);
        d.backward(&dy);
        assert!(d.dw.max_abs() > 0.0 || d.db.iter().any(|&g| g != 0.0));
        d.zero_grad();
        assert_eq!(d.dw.max_abs(), 0.0);
        assert!(d.db.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn deterministic_init() {
        let a = Dense::new(4, 3, Activation::Relu, 123);
        let b = Dense::new(4, 3, Activation::Relu, 123);
        assert_eq!(a.w, b.w);
    }
}
