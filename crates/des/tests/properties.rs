//! Property-based tests for the DES engine.

use foreco_des::dist::{Deterministic, Exponential, HyperExponential, Uniform};
use foreco_des::{EventQueue, Network, NodeSpec, Sampler, SourceSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Whatever order events are scheduled in, they pop sorted by time.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// Equal-time events preserve insertion order regardless of how many.
    #[test]
    fn event_queue_fifo_at_ties(n in 1usize..300) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(1.0, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    /// All samplers produce non-negative, finite values.
    #[test]
    fn samplers_nonnegative_finite(seed in 0u64..1000, rate in 0.01f64..100.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = Exponential::new(rate);
        let h = HyperExponential::new(&[(0.5, rate), (0.5, rate * 2.0)]);
        let u = Uniform::new(0.0, rate);
        let d = Deterministic::new(rate);
        for _ in 0..50 {
            for s in [&e as &dyn Sampler, &h, &u, &d] {
                let x = s.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0);
            }
        }
    }

    /// Hyperexponential mean equals the weighted phase means for any
    /// weights/rates.
    #[test]
    fn hyperexp_mean_formula(
        w1 in 0.1f64..10.0, w2 in 0.1f64..10.0,
        r1 in 0.1f64..10.0, r2 in 0.1f64..10.0,
    ) {
        let h = HyperExponential::new(&[(w1, r1), (w2, r2)]);
        let total = w1 + w2;
        let expected = (w1 / total) / r1 + (w2 / total) / r2;
        prop_assert!((h.mean() - expected).abs() < 1e-12);
    }

    /// Network records are always time-consistent and conservation holds:
    /// every generated customer appears exactly once per visited node.
    #[test]
    fn network_record_invariants(
        seed in 0u64..500,
        lambda in 0.1f64..2.0,
        mu in 0.5f64..4.0,
        cap in 1usize..10,
    ) {
        let mut net = Network::new(seed);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: Some(cap),
            service: Exponential::new(mu).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(lambda).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(200.0);
        let mut ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), recs.len(), "each customer recorded once");
        for r in &recs {
            if !r.lost {
                prop_assert!(r.arrival <= r.service_start);
                prop_assert!(r.service_start <= r.service_end);
                prop_assert!(r.waiting_time() >= 0.0);
            }
        }
    }

    /// With unbounded capacity nothing is ever lost.
    #[test]
    fn infinite_capacity_never_loses(seed in 0u64..200) {
        let mut net = Network::new(seed);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Exponential::new(1.0).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(2.0).boxed(), // overloaded!
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(50.0);
        prop_assert!(recs.iter().all(|r| !r.lost));
    }
}
