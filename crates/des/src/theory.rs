//! Closed-form queueing results used to validate the simulator.
//!
//! Standard formulas (any queueing-theory text, e.g. Kleinrock Vol. 1);
//! each function asserts its stability preconditions.

/// Utilisation `ρ = λ/μ`.
///
/// # Panics
/// Panics unless `λ > 0` and `μ > 0`.
pub fn rho(lambda: f64, mu: f64) -> f64 {
    assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
    lambda / mu
}

/// M/M/1 mean sojourn time `W = 1 / (μ − λ)`.
///
/// # Panics
/// Panics unless `λ < μ` (stability).
pub fn mm1_mean_sojourn(lambda: f64, mu: f64) -> f64 {
    assert!(lambda < mu, "M/M/1 requires λ < μ");
    1.0 / (mu - lambda)
}

/// M/M/1 mean waiting time in queue `Wq = ρ / (μ − λ)`.
///
/// # Panics
/// Panics unless `λ < μ`.
pub fn mm1_mean_wait(lambda: f64, mu: f64) -> f64 {
    assert!(lambda < mu, "M/M/1 requires λ < μ");
    rho(lambda, mu) / (mu - lambda)
}

/// M/M/1/K blocking probability, `K` = max customers in system:
/// `P_K = (1−ρ) ρ^K / (1 − ρ^{K+1})` for `ρ ≠ 1`, `1/(K+1)` for `ρ = 1`.
pub fn mm1k_loss_probability(lambda: f64, mu: f64, k: usize) -> f64 {
    let r = rho(lambda, mu);
    if (r - 1.0).abs() < 1e-12 {
        return 1.0 / (k as f64 + 1.0);
    }
    (1.0 - r) * r.powi(k as i32) / (1.0 - r.powi(k as i32 + 1))
}

/// M/D/1 mean waiting time `Wq = ρ / (2 μ (1 − ρ))`
/// (Pollaczek–Khinchine with zero service variance).
///
/// # Panics
/// Panics unless `λ < μ`.
pub fn md1_mean_wait(lambda: f64, mu: f64) -> f64 {
    let r = rho(lambda, mu);
    assert!(r < 1.0, "M/D/1 requires ρ < 1");
    r / (2.0 * mu * (1.0 - r))
}

/// M/G/1 mean waiting time by Pollaczek–Khinchine:
/// `Wq = λ E[S²] / (2 (1 − ρ))` with `E[S]` = `mean_service`,
/// `E[S²]` = `second_moment_service`.
///
/// # Panics
/// Panics unless the queue is stable (`λ · E[S] < 1`).
pub fn mg1_mean_wait(lambda: f64, mean_service: f64, second_moment_service: f64) -> f64 {
    let r = lambda * mean_service;
    assert!(r < 1.0, "M/G/1 requires λ·E[S] < 1");
    lambda * second_moment_service / (2.0 * (1.0 - r))
}

/// Second moment of a hyperexponential distribution with (weight, rate)
/// phases: `E[S²] = Σ w_j · 2/rate_j²`.
pub fn hyperexp_second_moment(phases: &[(f64, f64)]) -> f64 {
    let total: f64 = phases.iter().map(|(w, _)| w).sum();
    phases
        .iter()
        .map(|(w, r)| (w / total) * 2.0 / (r * r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        // λ=0.5, μ=1: W = 2, Wq = 1.
        assert!((mm1_mean_sojourn(0.5, 1.0) - 2.0).abs() < 1e-12);
        assert!((mm1_mean_wait(0.5, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn md1_is_half_mm1_wait() {
        let (l, m) = (0.6, 1.0);
        assert!((md1_mean_wait(l, m) - mm1_mean_wait(l, m) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_reduces_to_mm1() {
        // Exponential service: E[S] = 1/μ, E[S²] = 2/μ².
        let (l, m) = (0.7, 1.3);
        let pk = mg1_mean_wait(l, 1.0 / m, 2.0 / (m * m));
        assert!((pk - mm1_mean_wait(l, m)).abs() < 1e-12);
    }

    #[test]
    fn mm1k_limits() {
        // K large, ρ<1 → loss → 0.
        assert!(mm1k_loss_probability(0.5, 1.0, 50) < 1e-12);
        // ρ = 1 → uniform over K+1 states.
        assert!((mm1k_loss_probability(1.0, 1.0, 4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mm1k_monotone_in_load() {
        let p1 = mm1k_loss_probability(0.5, 1.0, 5);
        let p2 = mm1k_loss_probability(0.9, 1.0, 5);
        assert!(p2 > p1);
    }

    #[test]
    fn hyperexp_second_moment_single_phase() {
        // Exponential(rate 2): E[S²] = 2/4 = 0.5.
        assert!((hyperexp_second_moment(&[(1.0, 2.0)]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "λ < μ")]
    fn unstable_mm1_rejected() {
        mm1_mean_sojourn(2.0, 1.0);
    }
}
