//! Summary statistics over simulation records.
//!
//! CIW ships `records → pandas` summaries; this is the Rust equivalent
//! for the record streams produced by [`crate::Network`] and consumed by
//! the wireless-link experiments: waiting/sojourn aggregates, loss
//! fractions, and utilisation estimated from busy time.

use crate::network::Record;

/// Aggregates computed from a slice of records (single node or whole
/// network — filter before calling for per-node views).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSummary {
    /// Records considered.
    pub count: usize,
    /// Customers lost (capacity drops).
    pub lost: usize,
    /// Loss fraction `lost / count` (0 for an empty slice).
    pub loss_fraction: f64,
    /// Mean waiting time of served customers.
    pub mean_wait: f64,
    /// Mean sojourn (wait + service) of served customers.
    pub mean_sojourn: f64,
    /// Maximum sojourn observed.
    pub max_sojourn: f64,
    /// Total busy time (sum of service durations).
    pub busy_time: f64,
    /// Server utilisation: busy time / observed span (0 when span is 0).
    pub utilisation: f64,
}

/// Summarises a record slice.
///
/// Utilisation is estimated against the span from the earliest arrival to
/// the latest service end; for a warmed-up single-server node this
/// converges to the true ρ.
pub fn summarize(records: &[Record]) -> RecordSummary {
    let count = records.len();
    let lost = records.iter().filter(|r| r.lost).count();
    let served: Vec<&Record> = records.iter().filter(|r| !r.lost).collect();
    let mut wait_sum = 0.0;
    let mut sojourn_sum = 0.0;
    let mut max_sojourn = 0.0f64;
    let mut busy = 0.0;
    let mut first = f64::MAX;
    let mut last = f64::MIN;
    for r in &served {
        wait_sum += r.waiting_time();
        let s = r.sojourn_time();
        sojourn_sum += s;
        max_sojourn = max_sojourn.max(s);
        busy += r.service_end - r.service_start;
        first = first.min(r.arrival);
        last = last.max(r.service_end);
    }
    let n_served = served.len().max(1) as f64;
    let span = if served.is_empty() { 0.0 } else { last - first };
    RecordSummary {
        count,
        lost,
        loss_fraction: if count == 0 {
            0.0
        } else {
            lost as f64 / count as f64
        },
        mean_wait: wait_sum / n_served,
        mean_sojourn: sojourn_sum / n_served,
        max_sojourn,
        busy_time: busy,
        utilisation: if span > 0.0 {
            (busy / span).min(1.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Deterministic, Exponential, Sampler};
    use crate::{Network, NodeSpec, SourceSpec};

    fn run_mm1(lambda: f64, mu: f64, horizon: f64, seed: u64) -> Vec<Record> {
        let mut net = Network::new(seed);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Exponential::new(mu).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(lambda).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        net.run_until(horizon)
    }

    #[test]
    fn empty_slice_is_all_zero() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.loss_fraction, 0.0);
        assert_eq!(s.utilisation, 0.0);
    }

    #[test]
    fn utilisation_matches_rho_for_mm1() {
        let recs = run_mm1(0.5, 1.0, 100_000.0, 3);
        let s = summarize(&recs);
        assert!(
            (s.utilisation - 0.5).abs() < 0.02,
            "utilisation {}",
            s.utilisation
        );
        assert_eq!(s.lost, 0);
    }

    #[test]
    fn mean_sojourn_matches_theory() {
        let recs = run_mm1(0.5, 1.0, 100_000.0, 5);
        let s = summarize(&recs);
        let expected = crate::theory::mm1_mean_sojourn(0.5, 1.0);
        assert!(
            (s.mean_sojourn - expected).abs() / expected < 0.1,
            "sojourn {} vs theory {expected}",
            s.mean_sojourn
        );
        assert!(s.max_sojourn >= s.mean_sojourn);
        assert!(s.mean_wait < s.mean_sojourn);
    }

    #[test]
    fn losses_counted() {
        let mut net = Network::new(7);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: Some(1),
            service: Deterministic::new(2.0).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Deterministic::new(1.0).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(100.0);
        let s = summarize(&recs);
        assert!(s.lost > 0);
        assert!(s.loss_fraction > 0.3, "loss fraction {}", s.loss_fraction);
        // Deterministic 2 s services back to back: utilisation ≈ 1.
        assert!(s.utilisation > 0.95);
    }
}
