//! Random samplers for queueing simulations.
//!
//! All continuous distributions are implemented with inverse-CDF
//! transforms on `rand`'s uniform source, so the only external randomness
//! primitive is `gen::<f64>()` — easy to audit, fully deterministic under
//! seeding. Each sampler exposes its analytic [`Sampler::mean`], which the
//! test-suite uses to validate sampling.

use rand::rngs::StdRng;
use rand::Rng;

/// A distribution that can draw samples and report its analytic mean.
pub trait Sampler: Send {
    /// Draws one sample.
    fn sample(&self, rng: &mut StdRng) -> f64;
    /// Analytic expectation.
    fn mean(&self) -> f64;
    /// Boxes the sampler for storage in specs.
    fn boxed(self) -> Box<dyn Sampler>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Point mass at `value` — deterministic inter-arrival times model the
/// paper's fixed command period `Ω`.
#[derive(Debug, Clone, Copy)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value ≥ 0`.
    ///
    /// # Panics
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "Deterministic: bad value {value}"
        );
        Self { value }
    }
}

impl Sampler for Deterministic {
    fn sample(&self, _rng: &mut StdRng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential sampler with rate `λ > 0`.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Exponential: bad rate {rate}"
        );
        Self { rate }
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        // Inverse CDF: −ln(U)/λ. `gen` yields [0,1); use 1−U to avoid ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform sampler on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Uniform: bad range {lo}..{hi}"
        );
        Self { lo, hi }
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Hyperexponential: with probability `w_j`, draw `Exp(rate_j)`.
///
/// This is the paper's wireless service-time distribution: phase `j`
/// corresponds to "the frame needed `j` retransmissions" with weight `a_j`
/// and mean delay `E_j[ΔW]` (§V).
#[derive(Debug, Clone)]
pub struct HyperExponential {
    weights: Vec<f64>,
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Builds a hyperexponential from (weight, rate) pairs. Weights are
    /// normalised to sum to 1.
    ///
    /// # Panics
    /// Panics if empty, if any weight is negative, all weights are zero,
    /// or any rate is non-positive.
    pub fn new(phases: &[(f64, f64)]) -> Self {
        assert!(!phases.is_empty(), "HyperExponential: no phases");
        let total: f64 = phases.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "HyperExponential: zero total weight");
        let mut weights = Vec::with_capacity(phases.len());
        let mut rates = Vec::with_capacity(phases.len());
        for &(w, r) in phases {
            assert!(w >= 0.0, "HyperExponential: negative weight {w}");
            assert!(r.is_finite() && r > 0.0, "HyperExponential: bad rate {r}");
            weights.push(w / total);
            rates.push(r);
        }
        Self { weights, rates }
    }

    /// Phase weights (normalised).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Phase rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

impl Sampler for HyperExponential {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let mut u: f64 = rng.gen();
        let mut phase = self.weights.len() - 1;
        for (j, w) in self.weights.iter().enumerate() {
            if u < *w {
                phase = j;
                break;
            }
            u -= w;
        }
        let v: f64 = rng.gen();
        -(1.0 - v).ln() / self.rates[phase]
    }
    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(w, r)| w / r)
            .sum()
    }
}

/// Samples uniformly from a recorded data set (empirical distribution).
#[derive(Debug, Clone)]
pub struct Empirical {
    samples: Vec<f64>,
}

impl Empirical {
    /// Wraps a non-empty sample set.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn new(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Empirical: no samples");
        Self { samples }
    }
}

impl Sampler for Empirical {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.samples[rng.gen_range(0..self.samples.len())]
    }
    fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// Adds a constant offset to an inner sampler (e.g. transport delay `D`
/// on top of the wireless delay).
pub struct Shifted {
    offset: f64,
    inner: Box<dyn Sampler>,
}

impl Shifted {
    /// Creates `offset + inner`.
    ///
    /// # Panics
    /// Panics if `offset` is negative or not finite.
    pub fn new(offset: f64, inner: Box<dyn Sampler>) -> Self {
        assert!(
            offset.is_finite() && offset >= 0.0,
            "Shifted: bad offset {offset}"
        );
        Self { offset, inner }
    }
}

impl Sampler for Shifted {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.offset + self.inner.sample(rng)
    }
    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_mean(s: &dyn Sampler, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(3.5);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn exponential_mean_converges() {
        let e = Exponential::new(2.0);
        let m = sample_mean(&e, 200_000, 1);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let e = Exponential::new(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn exponential_memoryless_tail() {
        // P(X > 1) should be e^{-λ} for λ=1 → ≈ 0.3679.
        let e = Exponential::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let tail = (0..n).filter(|_| e.sample(&mut rng) > 1.0).count() as f64 / n as f64;
        assert!((tail - (-1.0f64).exp()).abs() < 0.01, "tail {tail}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let u = Uniform::new(2.0, 4.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        let m = sample_mean(&u, 100_000, 9);
        assert!((m - 3.0).abs() < 0.01);
    }

    #[test]
    fn hyperexponential_mean_matches_mixture() {
        let h = HyperExponential::new(&[(0.7, 1.0), (0.3, 0.1)]);
        // mean = 0.7*1 + 0.3*10 = 3.7
        assert!((h.mean() - 3.7).abs() < 1e-12);
        let m = sample_mean(&h, 400_000, 11);
        assert!((m - 3.7).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn hyperexponential_normalises_weights() {
        let h = HyperExponential::new(&[(2.0, 1.0), (2.0, 2.0)]);
        assert_eq!(h.weights(), &[0.5, 0.5]);
    }

    #[test]
    fn hyperexponential_single_phase_is_exponential() {
        let h = HyperExponential::new(&[(1.0, 4.0)]);
        assert!((h.mean() - 0.25).abs() < 1e-12);
        let m = sample_mean(&h, 200_000, 13);
        assert!((m - 0.25).abs() < 0.01);
    }

    #[test]
    fn empirical_draws_only_given_values() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let x = e.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_adds_offset() {
        let s = Shifted::new(10.0, Deterministic::new(1.0).boxed());
        let mut rng = StdRng::seed_from_u64(19);
        assert_eq!(s.sample(&mut rng), 11.0);
        assert_eq!(s.mean(), 11.0);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let e = Exponential::new(1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..32).map(|_| e.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..32).map(|_| e.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
