//! Time-ordered event queue with stable FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fire time plus insertion sequence number.
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap (a max-heap):
        // earlier time = greater priority; ties broken by insertion order.
        match other.time.partial_cmp(&self.time) {
            Some(Ordering::Equal) | None => other.seq.cmp(&self.seq),
            Some(ord) => ord,
        }
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in insertion order (FIFO), which makes simulations
/// reproducible regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN (events must be orderable).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "EventQueue: NaN event time");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, returning `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 'x');
        q.schedule(1.0, 'y');
        assert_eq!(q.pop(), Some((1.0, 'y')));
        q.schedule(5.0, 'z');
        assert_eq!(q.pop(), Some((5.0, 'z')));
        assert_eq!(q.pop(), Some((10.0, 'x')));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
