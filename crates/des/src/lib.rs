//! Discrete-event simulation engine for the FoReCo reproduction.
//!
//! The paper evaluates FoReCo against wireless delays produced by a
//! **G/HEXP/1/Q** queueing model "using the CIW discrete event simulation
//! library" (§V, \[43\]). CIW is Python; this crate is the Rust equivalent,
//! scoped to what queueing-model reproduction needs and nothing more:
//!
//! - a deterministic event heap with stable FIFO tie-breaking
//!   ([`EventQueue`]),
//! - inverse-CDF samplers for the distributions queueing theory speaks in
//!   ([`dist`]),
//! - a network-of-queues simulator with finite capacities, multiple
//!   servers, probabilistic routing and full per-customer records
//!   ([`Network`]),
//! - closed-form M/M/1, M/M/1/K and M/D/1 formulas used to validate the
//!   simulator in tests ([`theory`]),
//! - record summaries — waits, sojourns, losses, utilisation ([`stats`]).
//!
//! Everything is seeded and reproducible; there is no global state, no
//! threads, no `unsafe`.
//!
//! # Example: M/M/1 queue
//!
//! ```
//! use foreco_des::{dist, Network, NodeSpec, Sampler, SourceSpec};
//!
//! let mut net = Network::new(42);
//! let node = net.add_node(NodeSpec {
//!     servers: 1,
//!     capacity: None,
//!     service: dist::Exponential::new(1.0).boxed(),
//!     routing: vec![], // exit after service
//! });
//! net.add_source(SourceSpec {
//!     interarrival: dist::Exponential::new(0.5).boxed(),
//!     target: node,
//!     first_arrival: 0.0,
//! });
//! let records = net.run_until(10_000.0);
//! assert!(!records.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod event;
mod network;
pub mod stats;
pub mod theory;

pub use dist::Sampler;
pub use event::EventQueue;
pub use network::{Network, NodeSpec, Record, SourceSpec};
