//! Network-of-queues simulator (the mini-CIW core).
//!
//! Semantics follow CIW where the paper relies on them:
//! - each node has `servers` identical servers, a FIFO waiting line, and an
//!   optional `capacity` = maximum customers **in the system** (waiting +
//!   in service);
//! - a customer arriving at a full node is **lost** (recorded with
//!   [`Record::lost`] = true) — this is the 802.11 access-point queue drop
//!   of Fig. 4;
//! - after service a customer is routed probabilistically; unassigned
//!   probability mass exits the network.

use crate::dist::Sampler;
use crate::event::EventQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Node description: servers, capacity, service law and routing.
pub struct NodeSpec {
    /// Number of identical parallel servers (≥ 1).
    pub servers: usize,
    /// Max customers in the system (waiting + in service); `None` =
    /// unbounded.
    pub capacity: Option<usize>,
    /// Service-time sampler.
    pub service: Box<dyn Sampler>,
    /// `(target_node, probability)` pairs; remaining mass exits.
    pub routing: Vec<(usize, f64)>,
}

/// External arrival process feeding one node.
pub struct SourceSpec {
    /// Inter-arrival time sampler.
    pub interarrival: Box<dyn Sampler>,
    /// Node receiving the arrivals.
    pub target: usize,
    /// Absolute time of the first arrival.
    pub first_arrival: f64,
}

/// Per-customer life-cycle record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Customer id, unique and increasing in creation order.
    pub id: u64,
    /// Node the record refers to.
    pub node: usize,
    /// Arrival instant at the node.
    pub arrival: f64,
    /// Instant service began (= `arrival` when a server was free);
    /// meaningless when `lost`.
    pub service_start: f64,
    /// Instant service completed; meaningless when `lost`.
    pub service_end: f64,
    /// True when the customer was dropped because the node was full.
    pub lost: bool,
}

impl Record {
    /// Waiting time in the queue (0 for lost customers).
    pub fn waiting_time(&self) -> f64 {
        if self.lost {
            0.0
        } else {
            self.service_start - self.arrival
        }
    }

    /// Total sojourn time at the node (0 for lost customers).
    pub fn sojourn_time(&self) -> f64 {
        if self.lost {
            0.0
        } else {
            self.service_end - self.arrival
        }
    }
}

enum Event {
    /// `source_idx` fires a new external arrival.
    SourceArrival(usize),
    /// Customer `cust` finishes service at `node`.
    EndService {
        node: usize,
        cust: u64,
        arrival: f64,
        service_start: f64,
    },
}

struct NodeState {
    spec: NodeSpec,
    waiting: VecDeque<(u64, f64)>, // (customer id, arrival time)
    busy: usize,
}

/// The simulator: build with [`Network::new`], add nodes and sources, then
/// [`Network::run_until`].
pub struct Network {
    nodes: Vec<NodeState>,
    sources: Vec<SourceSpec>,
    rng: StdRng,
    next_id: u64,
}

impl Network {
    /// Creates an empty network with a seeded RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            sources: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Adds a node, returning its index.
    ///
    /// # Panics
    /// Panics if `servers == 0`, a routing probability is out of `[0, 1]`,
    /// or the routing mass exceeds 1.
    pub fn add_node(&mut self, spec: NodeSpec) -> usize {
        assert!(spec.servers >= 1, "node needs at least one server");
        let mass: f64 = spec.routing.iter().map(|(_, p)| *p).sum();
        assert!(
            spec.routing.iter().all(|(_, p)| (0.0..=1.0).contains(p)) && mass <= 1.0 + 1e-12,
            "invalid routing probabilities (mass {mass})"
        );
        self.nodes.push(NodeState {
            spec,
            waiting: VecDeque::new(),
            busy: 0,
        });
        self.nodes.len() - 1
    }

    /// Adds an external arrival source.
    ///
    /// # Panics
    /// Panics if `target` is not a valid node index.
    pub fn add_source(&mut self, spec: SourceSpec) -> usize {
        assert!(
            spec.target < self.nodes.len(),
            "source target {} out of range",
            spec.target
        );
        self.sources.push(spec);
        self.sources.len() - 1
    }

    /// Runs the simulation until simulated time `horizon`, returning every
    /// customer record (completed and lost) in event order.
    ///
    /// Arrivals scheduled before the horizon but finishing after it are
    /// still served to completion (their records are included), matching
    /// CIW's "finish outstanding work" semantics.
    pub fn run_until(&mut self, horizon: f64) -> Vec<Record> {
        assert!(horizon > 0.0, "horizon must be positive");
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut records = Vec::new();
        for (i, s) in self.sources.iter().enumerate() {
            queue.schedule(s.first_arrival, Event::SourceArrival(i));
        }
        while let Some((now, event)) = queue.pop() {
            match event {
                Event::SourceArrival(si) => {
                    if now > horizon {
                        continue; // stop generating, but drain services
                    }
                    let target = self.sources[si].target;
                    let cust = self.next_id;
                    self.next_id += 1;
                    self.arrive(target, cust, now, &mut queue, &mut records);
                    let gap = self.sources[si].interarrival.sample(&mut self.rng);
                    queue.schedule(now + gap, Event::SourceArrival(si));
                }
                Event::EndService {
                    node,
                    cust,
                    arrival,
                    service_start,
                } => {
                    records.push(Record {
                        id: cust,
                        node,
                        arrival,
                        service_start,
                        service_end: now,
                        lost: false,
                    });
                    // Route onwards.
                    if let Some(next) = self.route(node) {
                        let cust2 = cust; // same customer continues
                        self.arrive(next, cust2, now, &mut queue, &mut records);
                    }
                    // Free the server, start next waiting customer.
                    let st = &mut self.nodes[node];
                    st.busy -= 1;
                    if let Some((next_cust, next_arrival)) = st.waiting.pop_front() {
                        st.busy += 1;
                        let dur = st.spec.service.sample(&mut self.rng);
                        queue.schedule(
                            now + dur,
                            Event::EndService {
                                node,
                                cust: next_cust,
                                arrival: next_arrival,
                                service_start: now,
                            },
                        );
                    }
                }
            }
        }
        records
    }

    fn arrive(
        &mut self,
        node: usize,
        cust: u64,
        now: f64,
        queue: &mut EventQueue<Event>,
        records: &mut Vec<Record>,
    ) {
        let st = &mut self.nodes[node];
        let in_system = st.busy + st.waiting.len();
        if let Some(cap) = st.spec.capacity {
            if in_system >= cap {
                records.push(Record {
                    id: cust,
                    node,
                    arrival: now,
                    service_start: now,
                    service_end: now,
                    lost: true,
                });
                return;
            }
        }
        if st.busy < st.spec.servers {
            st.busy += 1;
            let dur = st.spec.service.sample(&mut self.rng);
            queue.schedule(
                now + dur,
                Event::EndService {
                    node,
                    cust,
                    arrival: now,
                    service_start: now,
                },
            );
        } else {
            st.waiting.push_back((cust, now));
        }
    }

    fn route(&mut self, node: usize) -> Option<usize> {
        let routing = &self.nodes[node].spec.routing;
        if routing.is_empty() {
            return None;
        }
        let mut u: f64 = self.rng.gen();
        for &(target, p) in routing {
            if u < p {
                return Some(target);
            }
            u -= p;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Deterministic, Exponential, Sampler};
    use crate::theory;

    /// D/D/1 with service shorter than inter-arrival: nobody ever waits.
    #[test]
    fn dd1_no_waiting() {
        let mut net = Network::new(0);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Deterministic::new(0.5).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Deterministic::new(1.0).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(100.0);
        assert!(recs.len() >= 99);
        for r in &recs {
            assert!(!r.lost);
            assert_eq!(r.waiting_time(), 0.0);
            assert!((r.sojourn_time() - 0.5).abs() < 1e-12);
        }
    }

    /// M/M/1: simulated mean waiting time within 10% of ρ/(μ−λ)·1/μ… —
    /// we check the mean sojourn W = 1/(μ−λ).
    #[test]
    fn mm1_mean_sojourn_matches_theory() {
        let (lambda, mu) = (0.5, 1.0);
        let mut net = Network::new(42);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Exponential::new(mu).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(lambda).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(200_000.0);
        // Skip warm-up: drop the first 1000 records.
        let sojourns: Vec<f64> = recs.iter().skip(1000).map(|r| r.sojourn_time()).collect();
        let mean = sojourns.iter().sum::<f64>() / sojourns.len() as f64;
        let expected = theory::mm1_mean_sojourn(lambda, mu);
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "simulated {mean}, theory {expected}"
        );
    }

    /// M/M/1/K: loss probability close to the truncated-geometric formula.
    #[test]
    fn mm1k_loss_probability_matches_theory() {
        let (lambda, mu, k) = (0.8, 1.0, 3usize);
        let mut net = Network::new(7);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: Some(k),
            service: Exponential::new(mu).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(lambda).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(300_000.0);
        let total = recs.len() as f64;
        let lost = recs.iter().filter(|r| r.lost).count() as f64;
        let p_loss = lost / total;
        let expected = theory::mm1k_loss_probability(lambda, mu, k);
        assert!(
            (p_loss - expected).abs() < 0.01,
            "simulated {p_loss}, theory {expected}"
        );
    }

    /// M/D/1: mean waiting time Wq = ρ/(2μ(1−ρ)); half the M/M/1 value.
    #[test]
    fn md1_mean_wait_matches_theory() {
        let (lambda, mu) = (0.6, 1.0);
        let mut net = Network::new(11);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Deterministic::new(1.0 / mu).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(lambda).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        let recs = net.run_until(200_000.0);
        let waits: Vec<f64> = recs.iter().skip(1000).map(|r| r.waiting_time()).collect();
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let expected = theory::md1_mean_wait(lambda, mu);
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "simulated {mean}, theory {expected}"
        );
    }

    /// Two nodes in tandem: all customers traverse both.
    #[test]
    fn tandem_routing() {
        let mut net = Network::new(3);
        let b = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Deterministic::new(0.1).boxed(),
            routing: vec![],
        });
        let a = net.add_node(NodeSpec {
            servers: 1,
            capacity: None,
            service: Deterministic::new(0.1).boxed(),
            routing: vec![(b, 1.0)],
        });
        net.add_source(SourceSpec {
            interarrival: Deterministic::new(1.0).boxed(),
            target: a,
            first_arrival: 0.0,
        });
        let recs = net.run_until(50.0);
        let at_a = recs.iter().filter(|r| r.node == a).count();
        let at_b = recs.iter().filter(|r| r.node == b).count();
        assert_eq!(at_a, at_b);
        assert!(at_a >= 49);
    }

    /// Multi-server node: two servers halve the effective load.
    #[test]
    fn two_servers_drain_faster_than_one() {
        let run = |servers: usize| -> f64 {
            let mut net = Network::new(5);
            let n = net.add_node(NodeSpec {
                servers,
                capacity: None,
                service: Deterministic::new(1.5).boxed(),
                routing: vec![],
            });
            net.add_source(SourceSpec {
                interarrival: Deterministic::new(1.0).boxed(),
                target: n,
                first_arrival: 0.0,
            });
            let recs = net.run_until(200.0);
            recs.iter().map(|r| r.waiting_time()).sum::<f64>() / recs.len() as f64
        };
        let w1 = run(1); // ρ = 1.5: unstable, waits grow
        let w2 = run(2); // ρ = 0.75 per server: stable, zero waits (D/D/2)
        assert!(w2 < 1e-9, "D/D/2 underloaded should never wait, got {w2}");
        assert!(
            w1 > 10.0,
            "D/D/1 overloaded should accumulate waits, got {w1}"
        );
    }

    #[test]
    fn determinism_under_same_seed() {
        let build = || {
            let mut net = Network::new(99);
            let n = net.add_node(NodeSpec {
                servers: 1,
                capacity: Some(5),
                service: Exponential::new(1.0).boxed(),
                routing: vec![],
            });
            net.add_source(SourceSpec {
                interarrival: Exponential::new(0.9).boxed(),
                target: n,
                first_arrival: 0.0,
            });
            net.run_until(1000.0)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn records_are_time_consistent() {
        let mut net = Network::new(13);
        let n = net.add_node(NodeSpec {
            servers: 1,
            capacity: Some(10),
            service: Exponential::new(2.0).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: Exponential::new(1.5).boxed(),
            target: n,
            first_arrival: 0.0,
        });
        for r in net.run_until(5000.0) {
            if !r.lost {
                assert!(r.arrival <= r.service_start, "{r:?}");
                assert!(r.service_start <= r.service_end, "{r:?}");
            }
        }
    }
}
