//! # FoReCo — forecast-based recovery for real-time robot remote control
//!
//! A full Rust reproduction of *"FoReCo: a forecast-based recovery
//! mechanism for real-time remote control of robotic manipulators"*
//! (Groshev et al., arXiv:2205.04189).
//!
//! Commands steer a 6-axis arm over an interference-prone IEEE 802.11
//! link at 50 Hz. When a command misses its deadline, FoReCo forecasts it
//! from the recent history and injects the forecast into the robot
//! drivers, so the arm keeps tracking the operator instead of freezing.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`net`] | `foreco-net` | socket ingress gateway, binary wire codec, typed operator SDK, fleet events + Prometheus metrics |
//! | [`serve`] | `foreco-serve` | sharded multi-session service runtime, metrics registry |
//! | [`store`] | `foreco-store` | refcounted content-addressed storage for traces, models, blobs |
//! | [`recovery`] | `foreco-core` | recovery engine, channels, closed loop, Fig-8 grid |
//! | [`forecast`] | `foreco-forecast` | MA, VAR, seq2seq, Holt, VARMA + training pipeline |
//! | [`robot`] | `foreco-robot` | Niryo-One-like arm, DH kinematics, PID driver loop |
//! | [`teleop`] | `foreco-teleop` | pick-and-place operators and datasets |
//! | [`wifi`] | `foreco-wifi` | 802.11 DCF analytical model + interferer + link sim |
//! | [`des`] | `foreco-des` | discrete-event simulation engine (mini-CIW) |
//! | [`nn`] | `foreco-nn` | LSTM/seq2seq substrate with Adam and BPTT |
//! | [`linalg`] | `foreco-linalg` | matrices, Cholesky/QR, OLS, statistics |
//!
//! # Quickstart
//!
//! ```
//! use foreco::prelude::*;
//!
//! // 1. Record training data (experienced operator) and fit the VAR.
//! let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
//! let var = Var::fit_differenced(&train, 5, 1e-6).unwrap();
//!
//! // 2. Wrap it in a recovery engine for a Niryo-One-like arm.
//! let model = niryo_one();
//! let engine = RecoveryEngine::new(
//!     Box::new(var),
//!     RecoveryConfig::for_model(&model),
//!     model.home(),
//! );
//!
//! // 3. Close the loop over a bursty channel.
//! let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
//! let mut channel = ControlledLossChannel::new(10, 0.01, 9);
//! let fates = channel.fates(test.commands.len());
//! let result = run_closed_loop(
//!     &model,
//!     &test.commands,
//!     &fates,
//!     RecoveryMode::FoReCo(engine),
//!     Default::default(),
//! );
//! assert!(result.rmse_mm < 50.0);
//! ```
//!
//! # Serving many loops at once
//!
//! The closed loop above is one operator and one robot. The [`serve`]
//! runtime hosts thousands of such loops concurrently on a shard pool,
//! with one trained forecaster shared across all of them. Shards
//! schedule wake-on-work: sessions report a `Wake` verdict after every
//! tick, idle streamed sessions park at a verified fixed point (costing
//! zero scheduler work until traffic or a timer fires, with their
//! missed slots replayed exactly on wake), and an optional balancer
//! migrates live sessions from overloaded to underloaded shards:
//!
//! ```
//! use foreco::prelude::*;
//! use std::sync::Arc;
//!
//! let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
//! let forecaster = SharedForecaster::new(Var::fit_differenced(&train, 5, 1e-6).unwrap());
//! let replay = Arc::new(Dataset::record(Skill::Inexperienced, 1, 0.02, 8).commands);
//! let specs: Vec<SessionSpec> = (0..16)
//!     .map(|id| SessionSpec::new(
//!         id,
//!         SourceSpec::Replayed(Arc::clone(&replay)),
//!         ChannelSpec::ControlledLoss { burst_len: 8, burst_prob: 0.01, seed: id },
//!         RecoverySpec::FoReCo {
//!             forecaster: forecaster.clone(),
//!             config: RecoveryConfig::for_model(&niryo_one()),
//!         },
//!     ))
//!     .collect();
//! // Event-driven scheduling is the default; the balancer is opt-in.
//! let registry = Service::spawn(ServiceConfig::with_balanced_shards(2)).run_to_completion(specs);
//! assert_eq!(registry.summary().expect("sessions completed").sessions, 16);
//! // The per-shard load picture (runnable vs parked, wakeups/pass,
//! // migrations) rides along with the reports.
//! assert_eq!(registry.shard_loads().len(), 2);
//! ```
//!
//! # Batched forecasting — a throughput knob that moves zero bits
//!
//! With [`serve::ServiceConfig::batching`] on (the default), each shard
//! pass groups co-shard sessions that share one resident forecaster and
//! are provably about to forecast into structure-of-arrays lanes, and
//! replaces their per-session virtual dispatch with one batched sweep
//! per lane. The sweep's *layout* is chosen per lane by
//! [`forecast::plan_layout`] from the family's cost class and the
//! lane's width: expensive kernels (Kalman-CV, VAR) run the slot-major
//! transposed kernels ([`forecast::Forecaster::forecast_batch_slots`],
//! cross-member auto-vectorized) once the lane is
//! [`forecast::SLOT_MAJOR_MIN_WIDTH`] wide and member-major
//! ([`forecast::Forecaster::forecast_batch`]) below that, while cheap
//! kernels (MA, Holt) are never gathered at all — batching was a
//! measured loss for them, so their sessions keep the plain scalar
//! path. [`serve::ServiceConfig::lane_layout`] forces one layout
//! fleet-wide (the determinism suites pin all three this way).
//! Membership is re-derived from scratch every pass, so park/wake,
//! migration, and adoption need no bookkeeping; any session the
//! planner cannot prove will miss simply takes the scalar path.
//! Batched kernels preserve the scalar per-member f64 operation order
//! exactly in every layout, so the knobs change throughput only —
//! every report is bit-identical any way you set them:
//!
//! ```
//! use foreco::prelude::*;
//! use std::sync::Arc;
//!
//! let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
//! let shared = SharedForecaster::new(Var::fit_differenced(&train, 5, 1e-6).unwrap());
//! let replay = Arc::new(Dataset::record(Skill::Inexperienced, 1, 0.02, 8).head(160).commands);
//! let specs = || -> Vec<SessionSpec> {
//!     (0..8)
//!         .map(|id| SessionSpec::new(
//!             id,
//!             SourceSpec::Replayed(Arc::clone(&replay)),
//!             ChannelSpec::ControlledLoss { burst_len: 8, burst_prob: 0.01, seed: id },
//!             RecoverySpec::FoReCo {
//!                 forecaster: shared.clone(),
//!                 config: RecoveryConfig::for_model(&niryo_one()),
//!             },
//!         ))
//!         .collect()
//! };
//! let run = |batching: bool, lane_layout: Option<LaneLayout>| {
//!     Service::spawn(ServiceConfig { batching, lane_layout, ..ServiceConfig::with_shards(2) })
//!         .run_to_completion(specs())
//! };
//! let scalar = run(false, None);                              // no batching at all
//! let adaptive = run(true, None);                             // per-lane plan_layout (default)
//! let slot_major = run(true, Some(LaneLayout::SlotMajor));    // forced transposed lanes
//! for id in 0..8 {
//!     let want = scalar.get(id).unwrap().rmse_mm.to_bits();
//!     assert_eq!(adaptive.get(id).unwrap().rmse_mm.to_bits(), want); // same bits
//!     assert_eq!(slot_major.get(id).unwrap().rmse_mm.to_bits(), want); // still same bits
//! }
//! ```
//!
//! # Real operators over the network
//!
//! The [`net`] gateway puts an actual wire in front of the service —
//! the deployment shape of the paper's Fig. 1: operator commands arrive
//! as UDP datagrams in a versioned binary format (seq = virtual tick
//! slot), session control (attach/detach/snapshot/adopt) runs over TCP,
//! and lost or reordered datagrams become exactly the loss and §VII-C
//! late-command events the recovery engine exists to absorb. Sessions
//! fed from a socket are *gated*: their virtual clock advances with the
//! delivered slot stream, so the same frames produce bit-identical
//! statistics over localhost UDP and the hermetic loopback transport:
//!
//! ```
//! use foreco::prelude::*;
//!
//! let gateway = Gateway::spawn(ServiceConfig::with_shards(2), GatewayConfig::default()).unwrap();
//! let mut operator = ForecoClient::connect(1, gateway.udp_addr(), gateway.tcp_addr()).unwrap();
//!
//! let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 5).head(100);
//! operator.open(trace.commands[0].clone(), 128).unwrap();
//! operator.replay(&trace.commands, 0, &ClientConfig::default()).unwrap();
//! let (report, ingress) = operator.close().unwrap();
//! assert_eq!(report.ticks, 100);
//! assert_eq!(ingress.delivered, 100);
//! gateway.shutdown();
//! ```
//!
//! # Observing a live fleet
//!
//! The observability plane rides the control plane, never the tick
//! path: shards accumulate plain-integer telemetry deltas while they
//! work and flush them to relaxed atomics once per scheduling pass, so
//! watching a fleet costs zero hot-path allocations and moves zero
//! bits — every session result stays bit-identical with subscribers
//! attached (pinned by `tests/serve_invariance.rs` and the gateway
//! suite). Three surfaces, all through the typed
//! [`net::ForecoClient`] SDK (rejections carry a machine-readable
//! [`net::RejectCode`]):
//!
//! - [`net::ForecoClient::metrics`] scrapes the fleet in Prometheus
//!   text exposition format — per-shard tick/open/complete/park
//!   counters, scheduler load gauges, wire ingress totals, and the
//!   completed-session RMSE quantile summary;
//! - [`net::ForecoClient::subscribe`] opens a poll-mode
//!   [`net::FleetEvent`] subscription (bounded per-subscriber queue,
//!   drop-oldest, shed counts reported with every drain);
//! - [`net::EventStream`] dedicates a TCP control connection to
//!   push-mode delivery of the same events as they happen.
//!
//! ```
//! use foreco::prelude::*;
//!
//! let gateway = Gateway::spawn(ServiceConfig::with_shards(2), GatewayConfig::default()).unwrap();
//! let mut operator = ForecoClient::loopback(&gateway, 1);
//! let mut watcher = ForecoClient::loopback(&gateway, 2);
//! let subscription = watcher.subscribe().unwrap();
//!
//! let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 5).head(100);
//! operator.open(trace.commands[0].clone(), 128).unwrap();
//! operator.replay(&trace.commands, 0, &ClientConfig::default()).unwrap();
//! operator.close().unwrap();
//!
//! let batch = watcher.poll_events(subscription, 64).unwrap();
//! assert!(batch.events.iter().any(|e| matches!(e, FleetEvent::Completed { id: 1, .. })));
//! let metrics = watcher.metrics().unwrap();
//! assert!(metrics.contains("# TYPE foreco_ticks_total counter"));
//! watcher.unsubscribe(subscription).unwrap();
//! gateway.shutdown();
//! ```
//!
//! # The zero-allocation hot path
//!
//! A session tick is the service's innermost loop — at 50 Hz per
//! operator it runs millions of times per second across a fleet — so
//! the steady-state tick performs **zero heap allocations**: the
//! recovery engine keeps its history in a flat ring buffer and
//! forecasts through [`forecast::Forecaster::forecast_into`], which
//! writes into a caller-owned buffer against a borrowed
//! [`forecast::HistoryView`] window (scratch space comes from a
//! reusable [`forecast::ForecastScratch`]). The allocating
//! `Forecaster::forecast` / `RecoveryEngine::tick` APIs remain as thin
//! wrappers, bit-identical by contract (pinned by the
//! `crates/forecast/tests/forecast_into.rs` property suite; the zero
//! figure itself is pinned by `tests/hot_path_allocs.rs`):
//!
//! ```
//! use foreco::prelude::*;
//!
//! let var = {
//!     let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
//!     Var::fit_differenced(&train, 5, 1e-6).unwrap()
//! };
//! let hist: Vec<f64> = (0..12).flat_map(|i| vec![0.01 * i as f64; 6]).collect();
//! let view = HistoryView::contiguous(&hist, 6);
//! let (mut scratch, mut pred) = (ForecastScratch::new(), vec![0.0; 6]);
//! var.forecast_into(&view, &mut scratch, &mut pred); // no allocation
//! assert_eq!(pred, var.forecast(&view.to_rows()));   // same bits
//! ```
//!
//! # Checkpointing sessions
//!
//! Recovery is stateful, so a production service must be able to carry
//! a session across process restarts and shard moves without changing
//! a single output. [`serve::Session::snapshot`] freezes a live loop to
//! a versioned, serialisable [`serve::SessionSnapshot`] and
//! [`serve::Session::restore`] rehydrates it — same results, bit for
//! bit (pinned by the `tests/snapshot_roundtrip.rs` determinism
//! suite). At the service level, `ServiceHandle::snapshot` checkpoints,
//! `ServiceHandle::migrate` moves a session between shards mid-run, and
//! `ServiceHandle::adopt` revives a checkpoint from another process:
//!
//! ```
//! use foreco::prelude::*;
//! use foreco::serve::{Session, SessionSnapshot};
//!
//! let model = niryo_one();
//! let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
//! let spec = SessionSpec::new(
//!     1,
//!     SourceSpec::replay(&test),
//!     ChannelSpec::ControlledLoss { burst_len: 8, burst_prob: 0.01, seed: 3 },
//!     RecoverySpec::Baseline,
//! );
//! // Freeze a running session to bytes…
//! let mut session = Session::open(&spec, &model);
//! for _ in 0..100 {
//!     session.advance();
//! }
//! let bytes = session.snapshot().unwrap().to_bytes();
//! // …ship them anywhere, and resume exactly where it left off.
//! let snap = SessionSnapshot::from_bytes(&bytes).unwrap();
//! let resumed = Session::restore(&snap, &model).unwrap();
//! assert_eq!(resumed.tick(), 100);
//! ```
//!
//! # Binary fleet checkpoints
//!
//! Snapshot version 3 is a length-prefixed **binary frame** (magic
//! `FSNP`, f64s as raw [`f64::to_bits`] words — bit-lossless by
//! construction), with versions 1 and 2 kept decodable forever as
//! explicit JSON match arms: `SessionSnapshot::from_bytes` accepts all
//! three, and every malformed shape maps to a typed
//! [`serve::RestoreError`], never a panic (fuzzed by
//! `tests/snapshot_codec.rs`). At fleet scale, shards encode each part
//! straight into a reusable scratch buffer and
//! `ServiceHandle::snapshot_fleet` splices the frames into a streaming
//! [`serve::FleetArchive`] *while the drain is in flight* — no
//! intermediate decode, traces deduplicated by content address — and
//! reports unknown ids instead of dropping them silently
//! ([`serve::FleetSnapshotReport`]). Archives merge without re-decoding
//! and file into shared storage under their content address:
//!
//! ```
//! use foreco::prelude::*;
//! use foreco::serve::Session;
//!
//! let model = niryo_one();
//! let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
//! let spec = SessionSpec::new(
//!     1,
//!     SourceSpec::replay(&test),
//!     ChannelSpec::ControlledLoss { burst_len: 8, burst_prob: 0.01, seed: 3 },
//!     RecoverySpec::Baseline,
//! );
//! let mut session = Session::open(&spec, &model);
//! for _ in 0..100 {
//!     session.advance();
//! }
//!
//! // One binary v3 part spliced into an archive, round-tripped, and
//! // filed under its content address.
//! let mut archive = FleetArchive::new();
//! archive.push_part(&session.snapshot().unwrap());
//! let back = FleetArchive::from_bytes(&archive.to_bytes()).unwrap();
//! assert_eq!(back, archive);
//!
//! let store = Storage::new();
//! let blob = archive.file_blob(&store);
//! let revived = FleetArchive::from_blob(&blob).unwrap();
//! assert_eq!(revived.sessions().unwrap()[0].tick, 100);
//! ```
//!
//! # Shared storage
//!
//! A fleet replaying the same teleop trace, or forecasting with the
//! same trained model, should pay for that content **once**. The
//! [`store`] crate provides a clonable, thread-safe [`store::Storage`]
//! that files traces, trained forecaster models, and opaque blobs under
//! their *content address* — a stable hash over canonical bytes, so two
//! bit-identical payloads are one resident object no matter who
//! inserted them — and refcounts each object through RAII claim
//! handles: the last claim dropping evicts the object. Sessions acquire
//! claims at build time ([`serve::SourceSpec::stored`],
//! [`serve::SharedForecaster::register`]), never on the tick path, so
//! the zero-allocation hot path is untouched. Bulk checkpoints dedup
//! the same way: `ServiceHandle::snapshot_fleet` writes each distinct
//! trace once into a [`serve::FleetArchive`] and
//! `ServiceHandle::adopt_fleet` revives the fleet sharing one resident
//! copy:
//!
//! ```
//! use foreco::prelude::*;
//!
//! let store = Storage::new();
//! let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
//! // A thousand specs built independently over the same dataset all
//! // resolve to one resident trace.
//! let a = SourceSpec::stored(&store, &trace);
//! let b = SourceSpec::stored(&store, &trace);
//! assert_eq!(store.stats().traces.objects, 1);
//! assert_eq!(store.stats().traces.claims, 2);
//! drop((a, b)); // last claim dropped → evicted
//! assert_eq!(store.stats().resident_bytes(), 0);
//! ```

pub use foreco_core as recovery;
pub use foreco_des as des;
pub use foreco_forecast as forecast;
pub use foreco_linalg as linalg;
pub use foreco_net as net;
pub use foreco_nn as nn;
pub use foreco_robot as robot;
pub use foreco_serve as serve;
pub use foreco_store as store;
pub use foreco_teleop as teleop;
pub use foreco_wifi as wifi;

/// The most common imports in one place.
pub mod prelude {
    pub use foreco_core::channel::{
        Arrival, Channel, ControlledLossChannel, IdealChannel, JammedChannel,
    };
    pub use foreco_core::edge::{edge_packets, run_closed_loop_edge, EdgePacket};
    pub use foreco_core::experiment::{run_cell, CellConfig, CellResult};
    pub use foreco_core::metrics;
    pub use foreco_core::{
        run_closed_loop, ClosedLoopResult, RecoveryConfig, RecoveryEngine, RecoveryMode,
        RecoveryStats,
    };
    pub use foreco_forecast::{
        forecast_horizon, plan_layout, CostClass, ForecastScratch, Forecaster, HistoryView, Holt,
        KalmanCv, LaneLayout, MovingAverage, Seq2SeqForecaster, Var, VarMode, Varma,
        SLOT_MAJOR_MIN_WIDTH,
    };
    pub use foreco_net::{
        ClientConfig, EventStream, FleetEvent, ForecoClient, Gateway, GatewayConfig, IngressConfig,
        NetClient, NetError, RejectCode, TcpControl, UdpWire,
    };
    pub use foreco_robot::{niryo_one, ArmModel, DriverConfig, RobotDriver};
    pub use foreco_serve::{
        BalancerConfig, ChannelSpec, EventWait, FleetArchive, FleetSnapshotReport, MetricsRegistry,
        Pacing, RecoverySpec, RestoreError, Scheduler, Service, ServiceConfig, ServiceError,
        ServiceHandle, ServiceSummary, SessionCommand, SessionEvent, SessionReport,
        SessionSnapshot, SessionSpec, ShardLoadSummary, SharedForecaster, SourceSpec, Wake,
    };
    pub use foreco_store::{ModelHandle, ObjectId, Storage, StoreStats, TraceHandle};
    pub use foreco_teleop::{Dataset, Operator, Skill};
    pub use foreco_wifi::{DcfModel, Interference, LinkConfig, Params, WirelessLink};
}
