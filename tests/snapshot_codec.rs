//! The binary snapshot codec (v3), fuzzed the way `net`'s wire codec
//! is: every malformed shape maps to a typed [`RestoreError`] and never
//! a panic, well-formed frames round-trip to *exact* struct equality,
//! and the legacy JSON arms (v1, v2) stay decodable forever via
//! committed golden fixtures.
//!
//! Four layers:
//!
//! 1. exact round-trips: `from_bytes(&to_bytes()) == snapshot` for
//!    scripted (FoReCo and baseline), streamed, and fleet
//!    (`ScriptedRef`) donors — struct equality, which pins every f64
//!    bit because the codec stores raw `to_bits` words;
//! 2. a property suite over truncation points and single-byte
//!    corruptions of a valid frame: the decoder returns `Ok` or a
//!    typed error, never panics, never over-allocates (length words
//!    are sanity-capped against the remaining frame);
//! 3. targeted malformed shapes: version skew → [`RestoreError::Version`],
//!    foreign magic → `BadMagic`, appended garbage → `TrailingBytes`,
//!    a corrupt count word → `Oversized`, an unassigned discriminant →
//!    `BadTag`, and a JSON document claiming v3 → `Decode` (v3 is
//!    binary-only);
//! 4. golden fixtures: committed v1 and v2 JSON snapshots that must
//!    decode and restore **bit-identically** against a freshly run
//!    twin in every future build. Regenerate (after an intentional
//!    donor change) with
//!    `cargo test -q --test snapshot_codec -- --ignored regenerate`.
//!
//! Run with a fixed case count via `PROPTEST_CASES` (CI pins it).

use foreco::prelude::*;
use foreco::serve::session::Advance;
use foreco::serve::snapshot::SessionSnapshot;
use foreco::serve::{RestoreError, Session, SessionId, SNAPSHOT_VERSION};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained VAR shared by every case (training dominates runtime).
fn shared_var() -> &'static Var {
    static VAR: OnceLock<Var> = OnceLock::new();
    VAR.get_or_init(|| {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
        Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR")
    })
}

/// The deterministic scripted spec behind every donor and both golden
/// fixtures: fixed seeds end to end, so a donor built today is
/// bit-identical to one built by the run that committed the fixtures.
fn scripted_spec(id: SessionId, foreco: bool, model: &ArmModel) -> SessionSpec {
    let recovery = if foreco {
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(shared_var().clone()),
            config: RecoveryConfig::for_model(model),
        }
    } else {
        RecoverySpec::Baseline
    };
    SessionSpec::new(
        id,
        SourceSpec::Recorded {
            skill: Skill::Inexperienced,
            cycles: 1,
            seed: 42,
        },
        ChannelSpec::ControlledLoss {
            burst_len: 4,
            burst_prob: 0.02,
            seed: 9,
        },
        recovery,
    )
}

/// Mid-run scripted donor: advance to `tick`, snapshot.
fn scripted_donor(foreco: bool, tick: u64) -> (SessionSnapshot, SessionSpec, ArmModel) {
    let model = niryo_one();
    let spec = scripted_spec(7, foreco, &model);
    let mut session = Session::open(&spec, &model);
    while session.tick() < tick {
        assert!(matches!(session.advance(), Advance::Ticked(_)));
    }
    let snap = session.snapshot().expect("scripted donor snapshotable");
    (snap, spec, model)
}

/// Mid-run streamed donor: live inbox, channel RNG words, fate buffer.
fn streamed_donor() -> SessionSnapshot {
    let model = niryo_one();
    let home = model.home();
    let spec = SessionSpec::new(
        8,
        SourceSpec::Streamed {
            initial: home.clone(),
            inbox_capacity: 8,
        },
        ChannelSpec::ControlledLoss {
            burst_len: 3,
            burst_prob: 0.04,
            seed: 11,
        },
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(shared_var().clone()),
            config: RecoveryConfig::for_model(&model),
        },
    );
    let mut session = Session::open(&spec, &model);
    for k in 0..40u64 {
        let command: Vec<f64> = home
            .iter()
            .enumerate()
            .map(|(j, q)| q + 0.01 * (((k * 31 + j as u64) % 7) as f64 - 3.0) / 3.0)
            .collect();
        session.offer(command);
        assert!(matches!(session.advance(), Advance::Ticked(_)));
    }
    session.snapshot().expect("streamed donor snapshotable")
}

/// The canonical valid v3 frame the fuzz properties chew on, built
/// once (VAR training and 120 ticks dominate the suite's runtime).
fn donor_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| scripted_donor(true, 120).0.to_bytes())
}

fn run_out(session: &mut Session) -> foreco::serve::SessionReport {
    loop {
        if let Advance::Completed(report) = session.advance() {
            break *report;
        }
    }
}

fn assert_reports_bit_identical(
    a: &foreco::serve::SessionReport,
    b: &foreco::serve::SessionReport,
    context: &str,
) {
    assert_eq!(a.ticks, b.ticks, "{context}: ticks");
    assert_eq!(a.misses, b.misses, "{context}: misses");
    assert_eq!(a.overflow_drops, b.overflow_drops, "{context}: drops");
    assert_eq!(a.stats, b.stats, "{context}: stats");
    assert_eq!(
        a.rmse_mm.to_bits(),
        b.rmse_mm.to_bits(),
        "{context}: rmse {} vs {}",
        a.rmse_mm,
        b.rmse_mm
    );
    assert_eq!(
        a.max_deviation_mm.to_bits(),
        b.max_deviation_mm.to_bits(),
        "{context}: max deviation {} vs {}",
        a.max_deviation_mm,
        b.max_deviation_mm
    );
}

// ---------------------------------------------------------------------
// Layer 1: exact round-trips.
// ---------------------------------------------------------------------

#[test]
fn binary_round_trip_is_exact_for_scripted_donors() {
    for foreco in [true, false] {
        let (snap, _, _) = scripted_donor(foreco, 90);
        let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).expect("decode");
        assert_eq!(
            decoded, snap,
            "foreco={foreco}: v3 round-trip must be exact"
        );
    }
}

#[test]
fn binary_round_trip_is_exact_for_streamed_donor() {
    let snap = streamed_donor();
    let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).expect("decode");
    assert_eq!(decoded, snap, "streamed v3 round-trip must be exact");
}

#[test]
fn binary_round_trip_is_exact_for_fleet_scripted_ref() {
    let (_, spec, model) = scripted_donor(true, 90);
    let mut session = Session::open(&spec, &model);
    while session.tick() < 90 {
        assert!(matches!(session.advance(), Advance::Ticked(_)));
    }
    let (part, trace) = session.snapshot_for_fleet().expect("fleet snapshotable");
    assert!(trace.is_some(), "scripted fleet part must carry its trace");
    let decoded = SessionSnapshot::from_bytes(&part.to_bytes()).expect("decode");
    assert_eq!(decoded, part, "ScriptedRef v3 round-trip must be exact");
}

#[test]
fn binary_restore_is_bit_identical() {
    let (snap, spec, model) = scripted_donor(true, 120);
    let mut solo = Session::open(&spec, &model);
    let solo_report = run_out(&mut solo);

    let decoded = SessionSnapshot::from_bytes(&snap.to_bytes()).expect("decode");
    let mut resumed = Session::restore(&decoded, &model).expect("restore");
    let resumed_report = run_out(&mut resumed);
    assert_reports_bit_identical(&solo_report, &resumed_report, "v3 binary restore");
}

// ---------------------------------------------------------------------
// Layer 2: fuzz — typed errors, never panics.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::env_or(32))]

    /// Every proper prefix of a valid frame fails with a typed error —
    /// overwhelmingly `Truncated`, never a panic, never `Ok`.
    #[test]
    fn truncation_yields_typed_errors(cut in 0.0f64..1.0) {
        let bytes = donor_bytes();
        let at = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
        let err = SessionSnapshot::from_bytes(&bytes[..at])
            .expect_err("proper prefix must not decode");
        prop_assert!(
            matches!(
                err,
                RestoreError::Truncated { .. }
                    | RestoreError::Oversized { .. }
                    | RestoreError::BadMagic { .. }
            ),
            "prefix of {at} bytes gave unexpected error {err:?}"
        );
    }

    /// Flipping any single byte yields `Ok` (payload bits changed) or a
    /// typed error — never a panic, never an unbounded allocation.
    #[test]
    fn single_byte_corruption_never_panics(
        offset in 0.0f64..1.0,
        xor in 1u32..256,
    ) {
        let mut bytes = donor_bytes().to_vec();
        let at = ((bytes.len() as f64 * offset) as usize).min(bytes.len() - 1);
        bytes[at] ^= xor as u8;
        // The result value is unconstrained (a flipped f64 payload bit
        // still decodes); reaching this line without panicking is the
        // property.
        let _ = SessionSnapshot::from_bytes(&bytes);
    }

    /// Random garbage (wrong leading bytes) is rejected with a typed
    /// error, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(words in proptest::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = words.iter().map(|&w| w as u8).collect();
        let _ = SessionSnapshot::from_bytes(&bytes);
    }
}

// ---------------------------------------------------------------------
// Layer 3: targeted malformed shapes.
// ---------------------------------------------------------------------

#[test]
fn binary_version_skew_is_rejected() {
    for skew in [2u32, 4, 99] {
        let mut bytes = donor_bytes().to_vec();
        bytes[4..8].copy_from_slice(&skew.to_le_bytes());
        match SessionSnapshot::from_bytes(&bytes) {
            Err(RestoreError::Version { found, expected }) => {
                assert_eq!(found, skew);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("binary version {skew} gave {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = donor_bytes().to_vec();
    bytes[..4].copy_from_slice(b"XSNP");
    match SessionSnapshot::from_bytes(&bytes) {
        Err(RestoreError::BadMagic { found }) => assert_eq!(&found, b"XSNP"),
        other => panic!("foreign magic gave {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = donor_bytes().to_vec();
    bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
    match SessionSnapshot::from_bytes(&bytes) {
        Err(RestoreError::TrailingBytes { expect, got }) => {
            assert_eq!(got, expect + 3);
        }
        other => panic!("trailing garbage gave {other:?}"),
    }
}

/// Byte 88 is the source discriminant (after magic, version, id, tick,
/// period, 4-word driver config, misses, acc_sq_mm, worst_mm); the
/// eight bytes after it are the scripted command count. Both offsets
/// are frozen by the v3 layout, which is exactly what this test pins.
const SOURCE_TAG_OFFSET: usize = 88;

#[test]
fn oversized_count_is_rejected_before_allocating() {
    let mut bytes = donor_bytes().to_vec();
    bytes[SOURCE_TAG_OFFSET + 1..SOURCE_TAG_OFFSET + 9].copy_from_slice(&u64::MAX.to_le_bytes());
    match SessionSnapshot::from_bytes(&bytes) {
        Err(RestoreError::Oversized {
            declared, limit, ..
        }) => {
            assert_eq!(declared, u64::MAX);
            assert!(limit < u64::MAX);
        }
        other => panic!("u64::MAX count gave {other:?}"),
    }
}

#[test]
fn unassigned_tag_is_rejected() {
    let mut bytes = donor_bytes().to_vec();
    bytes[SOURCE_TAG_OFFSET] = 0xEE;
    match SessionSnapshot::from_bytes(&bytes) {
        Err(RestoreError::BadTag { what, found }) => {
            assert_eq!(what, "source state");
            assert_eq!(found, 0xEE);
        }
        other => panic!("tag 0xEE gave {other:?}"),
    }
}

#[test]
fn json_claiming_v3_is_rejected() {
    // v3 is binary-only; a JSON document claiming it is malformed, not
    // merely future-versioned.
    let (snap, _, _) = scripted_donor(false, 60);
    let text = String::from_utf8(snap.to_json_bytes()).expect("JSON is UTF-8");
    assert!(text.contains("\"version\":2"), "donor JSON must stamp v2");
    let forged = text.replace("\"version\":2", "\"version\":3");
    match SessionSnapshot::from_bytes(forged.as_bytes()) {
        Err(RestoreError::Decode(_)) => {}
        other => panic!("JSON claiming v3 gave {other:?}"),
    }
    let future = text.replace("\"version\":2", "\"version\":9");
    match SessionSnapshot::from_bytes(future.as_bytes()) {
        Err(RestoreError::Version { found: 9, expected }) => {
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("JSON claiming v9 gave {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Layer 4: golden fixtures — legacy bytes must decode forever.
// ---------------------------------------------------------------------

const V1_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/snapshot_v1.json"
);
const V2_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/snapshot_v2.json"
);

/// The donor both fixtures were generated from (see `regenerate`).
fn fixture_donor() -> (SessionSnapshot, SessionSpec, ArmModel) {
    scripted_donor(true, 140)
}

fn assert_fixture_restores(path: &str, version: u32) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path} ({e}); regenerate with \
             `cargo test -q --test snapshot_codec -- --ignored regenerate`"
        )
    });
    let snap = SessionSnapshot::from_bytes(&bytes).expect("golden fixture decodes");
    assert_eq!(snap.version, version, "{path}: stamped version");

    let (donor, spec, model) = fixture_donor();
    // The legacy document is the donor's state verbatim (only the
    // version stamp differs), so the struct comparison pins every
    // field the JSON arm decodes.
    let mut expect = donor.clone();
    expect.version = version;
    assert_eq!(
        snap, expect,
        "{path}: fixture must equal the deterministic donor"
    );

    let mut solo = Session::open(&spec, &model);
    let solo_report = run_out(&mut solo);
    let mut resumed = Session::restore(&snap, &model).expect("fixture restores");
    let resumed_report = run_out(&mut resumed);
    assert_reports_bit_identical(&solo_report, &resumed_report, path);
}

#[test]
fn v1_golden_fixture_decodes_and_restores_bit_identically() {
    assert_fixture_restores(V1_FIXTURE, 1);
}

#[test]
fn v2_golden_fixture_decodes_and_restores_bit_identically() {
    assert_fixture_restores(V2_FIXTURE, 2);
}

/// Rewrites both golden fixtures from the deterministic donor. Run
/// only after an *intentional* donor or legacy-format change:
/// `cargo test -q --test snapshot_codec -- --ignored regenerate`.
#[test]
#[ignore = "rewrites committed golden fixtures"]
fn regenerate() {
    let (donor, _, _) = fixture_donor();
    let mut v1 = donor.clone();
    v1.version = 1;
    std::fs::write(V1_FIXTURE, v1.to_json_bytes()).expect("write v1 fixture");
    let mut v2 = donor;
    v2.version = 2;
    std::fs::write(V2_FIXTURE, v2.to_json_bytes()).expect("write v2 fixture");
}
