//! Shard-invariance contract of the service runtime: hosting a session
//! on any shard of any pool must be observationally identical — down to
//! the floating-point bits — to running the same closed loop solo with
//! `foreco_core::run_closed_loop`.
//!
//! 64 deterministic sessions (distinct operator streams, distinct
//! channel realisations, a mix of FoReCo and baseline recovery) run on
//! pools of 1, 2, and 8 shards; every per-session report must equal the
//! matching solo run.
//!
//! The scheduler dimension rides on the same workload: the event-driven
//! run-queue scheduler (and the load balancer migrating sessions
//! mid-run on top of it) must produce reports bit-identical to the
//! eager every-session-every-pass sweep at every pool size.

use foreco::prelude::*;
use foreco::serve::SessionReport;

const SESSIONS: u64 = 64;

fn forecaster() -> Var {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR")
}

fn channel_for(id: u64) -> (usize, f64, u64) {
    // Distinct burst shapes per session.
    (
        4 + (id % 8) as usize,
        0.008 + 0.001 * (id % 5) as f64,
        10_000 + id,
    )
}

fn spec_for(id: u64, shared: &SharedForecaster, model: &ArmModel) -> SessionSpec {
    let (burst_len, burst_prob, seed) = channel_for(id);
    let recovery = if id % 3 == 2 {
        RecoverySpec::Baseline
    } else {
        RecoverySpec::FoReCo {
            forecaster: shared.clone(),
            config: RecoveryConfig::for_model(model),
        }
    };
    SessionSpec::new(
        id,
        SourceSpec::Recorded {
            skill: Skill::Inexperienced,
            cycles: 1,
            seed: 500 + id,
        },
        ChannelSpec::ControlledLoss {
            burst_len,
            burst_prob,
            seed,
        },
        recovery,
    )
}

/// The ground truth: the same loop, run solo through `run_closed_loop`.
fn solo_run(id: u64, var: &Var, model: &ArmModel) -> (usize, f64, f64, Option<RecoveryStats>) {
    let commands = Dataset::record(Skill::Inexperienced, 1, 0.02, 500 + id).commands;
    let (burst_len, burst_prob, seed) = channel_for(id);
    let fates = ControlledLossChannel::new(burst_len, burst_prob, seed).fates(commands.len());
    let mode = if id % 3 == 2 {
        RecoveryMode::Baseline
    } else {
        RecoveryMode::FoReCo(RecoveryEngine::new(
            Box::new(var.clone()),
            RecoveryConfig::for_model(model),
            model.clamp(&commands[0]),
        ))
    };
    let res = run_closed_loop(model, &commands, &fates, mode, DriverConfig::default());
    (res.misses, res.rmse_mm, res.max_deviation_mm, res.stats)
}

fn assert_matches_solo(
    report: &SessionReport,
    id: u64,
    var: &Var,
    model: &ArmModel,
    shards: usize,
) {
    let (misses, rmse_mm, max_dev_mm, stats) = solo_run(id, var, model);
    assert_eq!(
        report.misses, misses,
        "session {id} misses @ {shards} shards"
    );
    assert_eq!(report.stats, stats, "session {id} stats @ {shards} shards");
    assert_eq!(
        report.rmse_mm.to_bits(),
        rmse_mm.to_bits(),
        "session {id} rmse not bit-identical @ {shards} shards: {} vs {}",
        report.rmse_mm,
        rmse_mm
    );
    assert_eq!(
        report.max_deviation_mm.to_bits(),
        max_dev_mm.to_bits(),
        "session {id} max deviation not bit-identical @ {shards} shards",
    );
}

#[test]
fn per_session_results_invariant_across_shard_counts() {
    let model = niryo_one();
    let var = forecaster();
    let shared = SharedForecaster::new(var.clone());

    let mut by_shard_count = Vec::new();
    for shards in [1usize, 2, 8] {
        let specs: Vec<SessionSpec> = (0..SESSIONS)
            .map(|id| spec_for(id, &shared, &model))
            .collect();
        let registry = Service::spawn(ServiceConfig::with_shards(shards)).run_to_completion(specs);
        assert_eq!(
            registry.len() as u64,
            SESSIONS,
            "{shards} shards: missing sessions"
        );
        by_shard_count.push((shards, registry));
    }

    // Every pool size agrees with the solo ground truth (hence with
    // every other pool size) session by session.
    for (shards, registry) in &by_shard_count {
        for id in 0..SESSIONS {
            let report = registry.get(id).expect("every session reports");
            assert_matches_solo(report, id, &var, &model, *shards);
        }
    }

    // And the aggregate summaries are identical too.
    let s1 = by_shard_count[0].1.summary().expect("sessions completed");
    for (_, registry) in &by_shard_count[1..] {
        assert_eq!(
            registry.summary().expect("sessions completed"),
            s1,
            "aggregate summary must be shard-count invariant"
        );
    }
}

/// The batched SoA forecasting sweep is a pure throughput concern: with
/// batching on (the default) or off, at 1, 2, and 8 shards, under the
/// eager sweep or the event-driven scheduler, every per-session report
/// must carry identical RMSE bits. The ground truth row is the scalar
/// path (batching off) under the eager sweep.
#[test]
fn batched_and_scalar_paths_agree() {
    let model = niryo_one();
    let var = forecaster();
    let shared = SharedForecaster::new(var);
    let specs = || -> Vec<SessionSpec> {
        (0..SESSIONS)
            .map(|id| spec_for(id, &shared, &model))
            .collect()
    };
    for shards in [1usize, 2, 8] {
        let ground = Service::spawn(ServiceConfig {
            scheduler: Scheduler::Eager,
            batching: false,
            ..ServiceConfig::with_shards(shards)
        })
        .run_to_completion(specs());
        let rows = [
            ("eager+batched", Scheduler::Eager, true),
            ("event+scalar", Scheduler::default(), false),
            ("event+batched", Scheduler::default(), true),
        ];
        for (label, scheduler, batching) in rows {
            let run = Service::spawn(ServiceConfig {
                scheduler,
                batching,
                ..ServiceConfig::with_shards(shards)
            })
            .run_to_completion(specs());
            for id in 0..SESSIONS {
                let want = ground.get(id).expect("scalar report");
                let got = run.get(id).expect("report");
                assert_eq!(
                    got.rmse_mm.to_bits(),
                    want.rmse_mm.to_bits(),
                    "session {id} rmse not bit-identical ({label} @ {shards} shards)"
                );
                assert_eq!(
                    got.max_deviation_mm.to_bits(),
                    want.max_deviation_mm.to_bits(),
                    "session {id} max deviation ({label} @ {shards} shards)"
                );
                assert_eq!(
                    got.stats, want.stats,
                    "session {id} stats ({label} @ {shards} shards)"
                );
            }
            assert_eq!(run.summary(), ground.summary(), "{label} @ {shards} shards");
        }
    }
}

/// The lane layout is a pure throughput concern: the adaptive plan
/// (the default), forced scalar-fallback lanes, forced member-major,
/// and forced slot-major must all carry RMSE bits identical to the
/// batching-off scalar ground truth, at 1, 2, and 8 shards. This is
/// the service-level half of the `batch_identity` contract — layout
/// selection may change per pass with lane width and must never be
/// observable in any session's results.
#[test]
fn every_lane_layout_agrees_at_every_shard_count() {
    use foreco::forecast::LaneLayout;

    let model = niryo_one();
    let var = forecaster();
    let shared = SharedForecaster::new(var);
    let specs = || -> Vec<SessionSpec> {
        (0..SESSIONS)
            .map(|id| spec_for(id, &shared, &model))
            .collect()
    };
    for shards in [1usize, 2, 8] {
        let ground = Service::spawn(ServiceConfig {
            batching: false,
            ..ServiceConfig::with_shards(shards)
        })
        .run_to_completion(specs());
        let rows: [(&str, Option<LaneLayout>); 4] = [
            ("adaptive", None),
            ("forced-scalar", Some(LaneLayout::Scalar)),
            ("forced-member-major", Some(LaneLayout::MemberMajor)),
            ("forced-slot-major", Some(LaneLayout::SlotMajor)),
        ];
        for (label, lane_layout) in rows {
            let run = Service::spawn(ServiceConfig {
                batching: true,
                lane_layout,
                ..ServiceConfig::with_shards(shards)
            })
            .run_to_completion(specs());
            for id in 0..SESSIONS {
                let want = ground.get(id).expect("scalar report");
                let got = run.get(id).expect("report");
                assert_eq!(
                    got.rmse_mm.to_bits(),
                    want.rmse_mm.to_bits(),
                    "session {id} rmse not bit-identical ({label} @ {shards} shards)"
                );
                assert_eq!(
                    got.max_deviation_mm.to_bits(),
                    want.max_deviation_mm.to_bits(),
                    "session {id} max deviation ({label} @ {shards} shards)"
                );
                assert_eq!(
                    got.stats, want.stats,
                    "session {id} stats ({label} @ {shards} shards)"
                );
            }
            assert_eq!(run.summary(), ground.summary(), "{label} @ {shards} shards");
        }
    }
}

/// The event-driven scheduler (run queue + timer wheel + parking) and
/// the balancer (live migration policy) are pure scheduling concerns:
/// at 1, 2, and 8 shards, their per-session reports must equal the
/// eager sweep's bit for bit, and so must the aggregate summaries.
#[test]
fn eager_and_event_driven_schedulers_agree() {
    let model = niryo_one();
    let var = forecaster();
    let shared = SharedForecaster::new(var);
    let specs = || -> Vec<SessionSpec> {
        (0..SESSIONS)
            .map(|id| spec_for(id, &shared, &model))
            .collect()
    };
    for shards in [1usize, 2, 8] {
        let eager = Service::spawn(ServiceConfig {
            scheduler: Scheduler::Eager,
            ..ServiceConfig::with_shards(shards)
        })
        .run_to_completion(specs());
        let event = Service::spawn(ServiceConfig::with_shards(shards)).run_to_completion(specs());
        let balanced = Service::spawn(ServiceConfig {
            balancer: Some(BalancerConfig {
                interval: std::time::Duration::from_millis(2),
                min_imbalance: 1,
                max_moves: 4,
            }),
            ..ServiceConfig::with_shards(shards)
        })
        .run_to_completion(specs());
        // A live telemetry subscriber's serve-side footprint: an
        // attached lifecycle observer turns on park narration, which
        // must not change a single output bit.
        let observed = {
            let service = Service::spawn(ServiceConfig::with_shards(shards));
            service.handle().attach_observer();
            service.run_to_completion(specs())
        };
        for id in 0..SESSIONS {
            let ground = eager.get(id).expect("eager report");
            for (label, registry) in [
                ("event-driven", &event),
                ("balanced", &balanced),
                ("observed", &observed),
            ] {
                let report = registry.get(id).expect("report");
                assert_eq!(
                    report.misses, ground.misses,
                    "session {id} misses ({label} @ {shards} shards)"
                );
                assert_eq!(
                    report.stats, ground.stats,
                    "session {id} stats ({label} @ {shards} shards)"
                );
                assert_eq!(
                    report.rmse_mm.to_bits(),
                    ground.rmse_mm.to_bits(),
                    "session {id} rmse not bit-identical ({label} @ {shards} shards)"
                );
                assert_eq!(
                    report.max_deviation_mm.to_bits(),
                    ground.max_deviation_mm.to_bits(),
                    "session {id} max deviation ({label} @ {shards} shards)"
                );
            }
        }
        let ground_summary = eager.summary().expect("sessions completed");
        assert_eq!(event.summary().expect("sessions completed"), ground_summary);
        assert_eq!(
            balanced.summary().expect("sessions completed"),
            ground_summary
        );
        assert_eq!(
            observed.summary().expect("sessions completed"),
            ground_summary,
            "an attached observer must be bit-invisible"
        );
        // The scheduler really scheduled: every pool advanced every tick.
        let loads = event.shard_loads();
        assert_eq!(loads.len(), shards);
        assert!(loads.iter().map(|l| l.wakeups).sum::<u64>() > 0);
    }
}

#[test]
fn loss_patterns_actually_exercised() {
    // Guard against the invariance test degenerating into comparing
    // loss-free runs: the configured channels must produce misses and
    // the FoReCo sessions must forecast.
    let model = niryo_one();
    let var = forecaster();
    let shared = SharedForecaster::new(var);
    let specs: Vec<SessionSpec> = (0..SESSIONS)
        .map(|id| spec_for(id, &shared, &model))
        .collect();
    let registry = Service::spawn(ServiceConfig::with_shards(2)).run_to_completion(specs);
    let s = registry.summary().expect("sessions completed");
    assert!(s.total_misses > 0, "channels produced no losses");
    assert!(s.recovery.forecasts > 0, "engines never forecast");
    assert!(s.rmse_mm.max > 0.0, "no task-space error recorded");
}
