//! The hot-path memory-discipline contract: a steady-state session tick
//! performs **zero heap allocations**.
//!
//! A counting `#[global_allocator]` wraps the system allocator with a
//! per-thread allocation counter (per-thread so the harness's parallel
//! test threads cannot pollute each other's measurements). Each test
//! warms a recovery loop past its first-use growth (forecast scratch,
//! fate chunk, PID transient) and then asserts the allocation delta of
//! every subsequent tick:
//!
//! - `RecoveryEngine::tick_into` — 0 allocations on both the delivery
//!   and the miss (forecast) path for MA, Holt, Kalman-CV, and VAR;
//! - `Session::advance` — 0 allocations per steady-state tick for a
//!   scripted FoReCo session over a lossy channel (the
//!   `serve_throughput` workload) and for a starved streamed session
//!   (the forecast-horizon → hold → park path);
//! - the bounded paths (fate-chunk refills on live sources, §VII-C
//!   late-command bookkeeping, VARMA's one-time scratch growth) stay
//!   under an explicit budget instead of growing per tick.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use foreco::prelude::*;
use foreco::serve::{Advance, Session};

/// System allocator with a per-thread allocation counter.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations performed by the calling thread so far.
fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the counter may be unavailable during thread teardown.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocations it performed.
fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = thread_allocs();
    f();
    thread_allocs() - before
}

/// The zero-allocation forecaster families of the acceptance criteria.
fn families() -> Vec<(&'static str, Box<dyn Forecaster>)> {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    vec![
        ("MA", Box::new(MovingAverage::new(5, 6))),
        ("Holt", Box::new(Holt::default_teleop(5, 6))),
        ("Kalman-CV", Box::new(KalmanCv::default_teleop(5, 6))),
        (
            "VAR",
            Box::new(Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR")),
        ),
    ]
}

/// Engine level: after warmup, neither deliveries nor misses touch the
/// allocator — the flat ring absorbs pushes in place and forecasts run
/// through `forecast_into` with engine-owned scratch.
#[test]
fn engine_ticks_are_allocation_free_for_all_deployed_families() {
    let model = niryo_one();
    let commands = Dataset::record(Skill::Inexperienced, 1, 0.02, 42).commands;
    for (name, forecaster) in families() {
        let mut engine = RecoveryEngine::new(
            forecaster,
            RecoveryConfig::for_model(&model),
            model.clamp(&commands[0]),
        );
        let mut out = vec![0.0; engine.dims()];
        // Warmup: fill the window, run one forecast (grows the scratch
        // high-water mark) and one post-outage delivery (exercises the
        // rebase buffers).
        for cmd in &commands[..12] {
            engine.tick_into(Some(cmd), &mut out);
        }
        engine.tick_into(None, &mut out);
        engine.tick_into(Some(&commands[12]), &mut out);
        // Steady state: a mix of hits and misses, every tick 0 allocs.
        for (i, cmd) in commands[13..313].iter().enumerate() {
            let arrived = if i % 7 < 2 {
                None
            } else {
                Some(cmd.as_slice())
            };
            let n = allocs_during(|| {
                engine.tick_into(arrived, &mut out);
            });
            assert_eq!(
                n,
                0,
                "{name}: tick {i} ({} path) allocated {n} times",
                if arrived.is_some() {
                    "delivery"
                } else {
                    "miss"
                }
            );
        }
        let stats = engine.stats();
        assert!(stats.forecasts > 0, "{name}: miss path never ran");
        assert!(stats.delivered > 0, "{name}: delivery path never ran");
    }
}

/// Session level: the full hosted loop (source → engine → both PID
/// drivers → metrics) on the scripted `serve_throughput` workload is
/// allocation-free per tick once warm.
#[test]
fn scripted_session_advance_is_allocation_free() {
    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let replay = std::sync::Arc::new(Dataset::record(Skill::Inexperienced, 2, 0.02, 8).commands);
    let total = replay.len();
    let spec = SessionSpec::new(
        1,
        SourceSpec::Replayed(replay),
        ChannelSpec::ControlledLoss {
            burst_len: 6,
            burst_prob: 0.02,
            seed: 9,
        },
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(var),
            config: RecoveryConfig::for_model(&model),
        },
    );
    let mut session = Session::open(&spec, &model);
    // Warm through the PID transient, the first loss burst, and the
    // scratch growth; leave plenty of script to measure.
    let warmup = total / 4;
    for _ in 0..warmup {
        assert!(matches!(session.advance(), Advance::Ticked(_)));
    }
    let measured = total / 2;
    for i in 0..measured {
        let n = allocs_during(|| {
            assert!(matches!(session.advance(), Advance::Ticked(_)));
        });
        assert_eq!(n, 0, "tick {i} of the scripted session allocated {n} times");
    }
}

/// Store-backed scripted sessions obey the same contract: the trace
/// claim is acquired once at session build (`SourceSpec::stored`) and
/// merely *held* thereafter — the tick path never touches the store's
/// locks or the allocator. Pins the "claims never on the hot path"
/// invariant from the shared-storage design.
#[test]
fn stored_session_advance_is_allocation_free() {
    use foreco::store::Storage;

    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let store = Storage::new();
    let dataset = Dataset::record(Skill::Inexperienced, 2, 0.02, 8);
    let total = dataset.commands.len();
    let spec = SessionSpec::new(
        4,
        SourceSpec::stored(&store, &dataset),
        ChannelSpec::ControlledLoss {
            burst_len: 6,
            burst_prob: 0.02,
            seed: 9,
        },
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(var),
            config: RecoveryConfig::for_model(&model),
        },
    );
    let mut session = Session::open(&spec, &model);
    assert_eq!(store.stats().traces.objects, 1);
    let warmup = total / 4;
    for _ in 0..warmup {
        assert!(matches!(session.advance(), Advance::Ticked(_)));
    }
    let measured = total / 2;
    for i in 0..measured {
        let n = allocs_during(|| {
            assert!(matches!(session.advance(), Advance::Ticked(_)));
        });
        assert_eq!(n, 0, "tick {i} of the stored session allocated {n} times");
    }
    // The claim outlived the whole run without being re-acquired; the
    // trace evicts only when spec and session both drop.
    drop(session);
    drop(spec);
    assert_eq!(store.stats().traces.objects, 0);
}

/// A starved streamed session exercises the other steady state: misses
/// covered by forecasts, then horizon holds at the idle fixed point
/// (including the per-tick park-eligibility probing). Still 0 allocs.
#[test]
fn starved_streamed_session_is_allocation_free() {
    let model = niryo_one();
    let home = model.home();
    let spec = SessionSpec::new(
        2,
        SourceSpec::Streamed {
            initial: home.clone(),
            inbox_capacity: 8,
        },
        ChannelSpec::Ideal,
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(MovingAverage::new(4, home.len())),
            config: RecoveryConfig::for_model(&model),
        },
    );
    let mut session = Session::open(&spec, &model);
    // A little live traffic, then starvation through the forecast
    // horizon (50 ticks) into the hold regime.
    for _ in 0..4 {
        session.offer(home.clone());
        session.advance();
    }
    for _ in 0..80 {
        session.advance();
    }
    for i in 0..200 {
        let n = allocs_during(|| {
            assert!(matches!(session.advance(), Advance::Ticked(_)));
        });
        assert_eq!(n, 0, "starved tick {i} allocated {n} times");
    }
}

/// The batched SoA sweep obeys the same discipline: once the lane's
/// buffers have hit their high-water mark, a full batched miss round —
/// gather every engine's window, one `forecast_batch`, hand each engine
/// its row through `tick_miss_prepared` — performs zero allocations,
/// and so do the interleaved deliveries. Pins the "batching enabled"
/// half of the zero-alloc contract at the machinery level.
#[test]
fn batched_lane_sweep_is_allocation_free() {
    use foreco::forecast::{BatchLane, ForecastScratch};
    use std::sync::Arc;

    let model = niryo_one();
    let commands = Dataset::record(Skill::Inexperienced, 1, 0.02, 42).commands;
    for (name, forecaster) in families() {
        let shared: Arc<dyn Forecaster> = Arc::from(forecaster);
        let mut engines: Vec<RecoveryEngine> = (0..16)
            .map(|_| {
                RecoveryEngine::new(
                    Box::new(SharedForecaster::from_arc(Arc::clone(&shared))),
                    RecoveryConfig::for_model(&model),
                    model.clamp(&commands[0]),
                )
            })
            .collect();
        let mut out = vec![0.0; model.dof()];
        for cmd in &commands[..12] {
            for e in &mut engines {
                e.tick_into(Some(cmd), &mut out);
            }
        }
        let mut lane = BatchLane::new(Arc::clone(&shared));
        let mut scratch = ForecastScratch::new();
        // Warmup round: lane buffers and scratch grow to high water,
        // and the post-outage delivery exercises each engine's rebase
        // buffers once.
        lane.clear();
        for e in &engines {
            lane.push_window(&e.history_view());
        }
        lane.run(&mut scratch);
        for (i, e) in engines.iter_mut().enumerate() {
            e.tick_miss_prepared(lane.result(i), &mut out);
        }
        for e in &mut engines {
            e.tick_into(Some(&commands[12]), &mut out);
        }
        // Steady state: every batched miss round and every delivery
        // round is allocation-free.
        for (round, cmd) in commands[12..112].iter().enumerate() {
            let n = allocs_during(|| {
                lane.clear();
                for e in &engines {
                    lane.push_window(&e.history_view());
                }
                lane.run(&mut scratch);
                for (i, e) in engines.iter_mut().enumerate() {
                    e.tick_miss_prepared(lane.result(i), &mut out);
                }
                for e in &mut engines {
                    e.tick_into(Some(cmd), &mut out);
                }
            });
            assert_eq!(n, 0, "{name}: batched round {round} allocated {n} times");
        }
    }
}

/// The slot-major sweep obeys the same discipline at a width past the
/// planner's threshold: the transpose lives in a lane-owned buffer and
/// the kernels carve per-member state lanes from the caller's scratch,
/// so after one warmup round a full slot-major miss round (gather →
/// transpose → `run_layout(SlotMajor)` → prepared rows) plus the
/// interleaved deliveries performs zero allocations. Families without
/// a slot kernel (MA, Holt) degrade through the same call — their
/// fallback must be just as silent.
#[test]
fn slot_major_lane_sweep_is_allocation_free() {
    use foreco::forecast::{BatchLane, ForecastScratch, LaneLayout, SLOT_MAJOR_MIN_WIDTH};
    use std::sync::Arc;

    let model = niryo_one();
    let commands = Dataset::record(Skill::Inexperienced, 1, 0.02, 42).commands;
    let width = SLOT_MAJOR_MIN_WIDTH + 16;
    for (name, forecaster) in families() {
        let shared: Arc<dyn Forecaster> = Arc::from(forecaster);
        let mut engines: Vec<RecoveryEngine> = (0..width)
            .map(|_| {
                RecoveryEngine::new(
                    Box::new(SharedForecaster::from_arc(Arc::clone(&shared))),
                    RecoveryConfig::for_model(&model),
                    model.clamp(&commands[0]),
                )
            })
            .collect();
        let mut out = vec![0.0; model.dof()];
        for cmd in &commands[..12] {
            for e in &mut engines {
                e.tick_into(Some(cmd), &mut out);
            }
        }
        let mut lane = BatchLane::new(Arc::clone(&shared));
        let mut scratch = ForecastScratch::new();
        // Warmup round grows the windows, the transpose buffer, and the
        // per-member state lanes to their high-water marks.
        lane.clear();
        for e in &engines {
            lane.push_window(&e.history_view());
        }
        lane.run_layout(LaneLayout::SlotMajor, &mut scratch);
        for (i, e) in engines.iter_mut().enumerate() {
            e.tick_miss_prepared(lane.result(i), &mut out);
        }
        for e in &mut engines {
            e.tick_into(Some(&commands[12]), &mut out);
        }
        for (round, cmd) in commands[12..112].iter().enumerate() {
            let n = allocs_during(|| {
                lane.clear();
                for e in &engines {
                    lane.push_window(&e.history_view());
                }
                lane.run_layout(LaneLayout::SlotMajor, &mut scratch);
                for (i, e) in engines.iter_mut().enumerate() {
                    e.tick_miss_prepared(lane.result(i), &mut out);
                }
                for e in &mut engines {
                    e.tick_into(Some(cmd), &mut out);
                }
            });
            assert_eq!(n, 0, "{name}: slot-major round {round} allocated {n} times");
        }
    }
}

/// The restore path shares model weights through the content-addressed
/// store: N sessions rehydrated from same-model snapshots hold N claims
/// on **one** resident forecaster (ROADMAP #2's last headroom), and
/// their steady-state ticks stay allocation-free.
#[test]
fn restored_sessions_share_one_resident_model() {
    use foreco::store::Storage;

    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let replay = std::sync::Arc::new(Dataset::record(Skill::Inexperienced, 2, 0.02, 8).commands);
    let total = replay.len();
    let spec_for = |id: u64| {
        SessionSpec::new(
            id,
            SourceSpec::Replayed(std::sync::Arc::clone(&replay)),
            ChannelSpec::ControlledLoss {
                burst_len: 6,
                burst_prob: 0.02,
                seed: 9 + id,
            },
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(var.clone()),
                config: RecoveryConfig::for_model(&model),
            },
        )
    };
    let store = Storage::new();
    let mut restored = Vec::new();
    for id in 0..8 {
        let mut donor = Session::open(&spec_for(id), &model);
        for _ in 0..total / 4 {
            donor.advance();
        }
        let snap = donor.snapshot().expect("snapshot");
        restored.push(Session::restore_shared(&snap, &model, &store).expect("restore"));
    }
    let stats = store.stats().models;
    assert_eq!(stats.objects, 1, "eight restores, one resident model");
    assert_eq!(stats.claims, 8, "every session holds a claim");
    // The shared-model engines tick allocation-free like any other.
    // Warm the restored session through its first misses first: the
    // forecast scratch is transient state, rebuilt (and grown once) on
    // the first post-restore forecast.
    let mut session = restored.pop().expect("one restored session");
    for _ in 0..total / 4 {
        session.advance();
    }
    for i in 0..total / 3 {
        let n = allocs_during(|| {
            assert!(matches!(session.advance(), Advance::Ticked(_)));
        });
        assert_eq!(n, 0, "tick {i} of the restored session allocated {n} times");
    }
    drop(session);
    drop(restored);
    assert_eq!(
        store.stats().models.objects,
        0,
        "dropping the last claim evicts the model"
    );
}

/// The off-steady paths are *bounded*, not zero: a gated (socket-fed)
/// session pays one fate-chunk refill per 256 delivered commands and a
/// small constant for §VII-C late bookkeeping — never O(R·dims) per
/// tick like the pre-ring engine did.
#[test]
fn gated_miss_and_late_paths_stay_within_the_allocation_budget() {
    let model = niryo_one();
    let home = model.home();
    let mut config = RecoveryConfig::for_model(&model);
    config.use_late_commands = true;
    let spec = SessionSpec::new(
        3,
        SourceSpec::Gated {
            initial: home.clone(),
            inbox_capacity: 1024,
        },
        ChannelSpec::Ideal,
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(MovingAverage::new(4, home.len())),
            config,
        },
    );
    let mut session = Session::open(&spec, &model);
    // Queue 600 slots up front (offers own their allocations), mixing
    // deliveries, wire losses, and late patches.
    let mut tick_slots = 0u64;
    for k in 0..600u64 {
        match k % 9 {
            3 | 4 => {
                session.offer_miss();
                tick_slots += 1;
            }
            5 => {
                let mut cmd = home.clone();
                cmd[0] += 0.001;
                session.offer_late(cmd, 2);
            }
            _ => {
                let mut cmd = home.clone();
                cmd[1] += 0.002 * (k % 3) as f64;
                session.offer(cmd);
                tick_slots += 1;
            }
        }
    }
    let mut total = 0u64;
    for _ in 0..tick_slots {
        total += allocs_during(|| {
            assert!(matches!(session.advance(), Advance::Ticked(_)));
        });
    }
    // Budget: one Vec per 256-slot fate chunk plus slack for the fate
    // buffer's one-time growth. The old clone-the-window engine would
    // have spent >1 allocation on every single miss.
    let budget = tick_slots / 64 + 8;
    assert!(
        total <= budget,
        "draining {tick_slots} gated slots allocated {total} times (budget {budget})"
    );
}
