//! Integration tests spanning the whole stack: teleop data → forecaster
//! training → channel → recovery → robot → metrics.

use foreco::prelude::*;

fn trained_var(seed: u64) -> Var {
    let train = Dataset::record(Skill::Experienced, 8, 0.02, seed);
    Var::fit_differenced(&train, 5, 1e-6).expect("training data is well-conditioned")
}

fn engine(var: &Var, model: &ArmModel, first: &[f64]) -> RecoveryEngine {
    RecoveryEngine::new(
        Box::new(var.clone()),
        RecoveryConfig::for_model(model),
        model.clamp(first),
    )
}

/// Fig. 9's qualitative content: FoReCo conceals bursts of 5/10/25
/// consecutive losses, and its error grows with the burst length
/// (error propagation through the forecast recursion).
#[test]
fn controlled_bursts_fig9_shape() {
    let model = niryo_one();
    let var = trained_var(1);
    let test = Dataset::record(Skill::Inexperienced, 2, 0.02, 500);
    let mut foreco_rmse = Vec::new();
    for burst in [5usize, 10, 25] {
        // Average over channel realisations: individual bursts land on
        // dwells or fast reaches, so single-seed comparisons are noisy.
        let mut base_sum = 0.0;
        let mut fore_sum = 0.0;
        for seed in 0..4u64 {
            let fates =
                ControlledLossChannel::new(burst, 0.008, 99 + seed).fates(test.commands.len());
            base_sum += run_closed_loop(
                &model,
                &test.commands,
                &fates,
                RecoveryMode::Baseline,
                DriverConfig::default(),
            )
            .rmse_mm;
            fore_sum += run_closed_loop(
                &model,
                &test.commands,
                &fates,
                RecoveryMode::FoReCo(engine(&var, &model, &test.commands[0])),
                DriverConfig::default(),
            )
            .rmse_mm;
        }
        assert!(
            fore_sum < base_sum,
            "burst {burst}: FoReCo {:.2} mm vs baseline {:.2} mm (4-seed sums)",
            fore_sum,
            base_sum
        );
        foreco_rmse.push(fore_sum / 4.0);
    }
    assert!(
        foreco_rmse[2] > foreco_rmse[0],
        "FoReCo error must grow with burst length: {foreco_rmse:?}"
    );
}

/// Fig. 10's qualitative content: under a jammed 802.11 channel FoReCo
/// at least halves the trajectory error (paper: 18.91 → 8.72 mm, ×2.17).
#[test]
fn jammer_fig10_shape() {
    let model = niryo_one();
    let var = trained_var(2);
    let test = Dataset::record(Skill::Inexperienced, 2, 0.02, 600);
    let commands = &test.commands[..1500.min(test.commands.len())];
    let link = LinkConfig {
        stations: 15,
        interference: Interference::new(0.04, 60),
        ..LinkConfig::default()
    };
    // Average over a few seeds to keep the assertion stable.
    let mut base_sum = 0.0;
    let mut fore_sum = 0.0;
    for seed in 0..5u64 {
        let mut channel = JammedChannel::new(link, 0.0, 3000 + seed);
        let fates = channel.fates(commands.len());
        base_sum += run_closed_loop(
            &model,
            commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        )
        .rmse_mm;
        fore_sum += run_closed_loop(
            &model,
            commands,
            &fates,
            RecoveryMode::FoReCo(engine(&var, &model, &commands[0])),
            DriverConfig::default(),
        )
        .rmse_mm;
    }
    assert!(
        fore_sum * 1.5 < base_sum,
        "expected ≥ x1.5 improvement: baseline {base_sum:.2}, FoReCo {fore_sum:.2}"
    );
}

/// The full Fig.-8 pipeline in miniature through the public API.
#[test]
fn interference_grid_cell_via_api() {
    let model = niryo_one();
    let var = trained_var(3);
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 700);
    let cell = CellConfig {
        robots: 15,
        interference: Interference::new(0.05, 100),
        repetitions: 3,
        tolerance: 0.0,
        seed: 40_000,
    };
    let res = run_cell(&model, &test.commands, &|| Box::new(var.clone()), &cell);
    assert!(res.miss_rate > 0.02);
    assert!(res.foreco_rmse_mm < res.no_forecast_rmse_mm);
}

/// Trained artifacts survive a JSON round-trip and keep forecasting
/// identically (deployment: train at the edge, ship to the robot).
#[test]
fn model_serialization_round_trip() {
    let var = trained_var(4);
    let json = serde_json::to_string(&var).expect("serialize");
    let back: Var = serde_json::from_str(&json).expect("deserialize");
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 800);
    let hist = &test.commands[..10];
    let a = var.forecast(hist);
    let b = back.forecast(hist);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9);
    }
}

/// Dataset JSON round-trip (the recorded histories are the deployment
/// artifact the paper's pipeline loads in its first stage).
#[test]
fn dataset_serialization_round_trip() {
    let ds = Dataset::record(Skill::Experienced, 1, 0.02, 5);
    let json = serde_json::to_string(&ds).expect("serialize");
    let back: Dataset = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), ds.len());
    // serde_json's default float parse may differ by 1 ULP.
    for (a, b) in back.commands[10].iter().zip(&ds.commands[10]) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

/// Every forecaster exposed by the prelude can drive the recovery engine.
#[test]
fn every_forecaster_plugs_into_the_engine() {
    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 3, 0.02, 6);
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 900);
    let commands = &test.commands[..400];
    let forecasters: Vec<Box<dyn Forecaster>> = vec![
        Box::new(MovingAverage::new(5, 6)),
        Box::new(Var::fit_differenced(&train, 5, 1e-6).unwrap()),
        Box::new(Holt::default_teleop(6, 6)),
        Box::new(Varma::fit(&train, 4, 2, 1e-6).unwrap()),
    ];
    for f in forecasters {
        let name = f.name();
        let eng = RecoveryEngine::new(
            f,
            RecoveryConfig::for_model(&model),
            model.clamp(&commands[0]),
        );
        let fates = ControlledLossChannel::new(8, 0.01, 77).fates(commands.len());
        let res = run_closed_loop(
            &model,
            commands,
            &fates,
            RecoveryMode::FoReCo(eng),
            DriverConfig::default(),
        );
        assert!(
            res.rmse_mm.is_finite() && res.rmse_mm < 500.0,
            "{name}: rmse {}",
            res.rmse_mm
        );
    }
}

/// Determinism end to end: identical seeds → identical RMSE.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let model = niryo_one();
        let var = trained_var(7);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 1000);
        let mut ch = JammedChannel::new(
            LinkConfig {
                stations: 25,
                interference: Interference::new(0.025, 50),
                ..LinkConfig::default()
            },
            0.0,
            123,
        );
        let fates = ch.fates(test.commands.len());
        run_closed_loop(
            &model,
            &test.commands,
            &fates,
            RecoveryMode::FoReCo(engine(&var, &model, &test.commands[0])),
            DriverConfig::default(),
        )
        .rmse_mm
    };
    assert_eq!(run(), run());
}
