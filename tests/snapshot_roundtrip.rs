//! The snapshot/restore determinism contract, property-tested.
//!
//! FoReCo's recovery is stateful (forecaster history window, outage
//! counters, PID integrators, channel RNG), so checkpointing a session
//! and rehydrating it — on the same shard, another shard, or another
//! process — must not change a single output bit. Three layers pin that:
//!
//! 1. a property suite over random operator streams, channel
//!    realisations, recovery modes, and snapshot ticks: freeze to bytes
//!    mid-run (twice, chained), restore, and compare the final
//!    [`SessionReport`] bit-for-bit against the uninterrupted twin;
//! 2. a service-level live-migration test: every session is moved
//!    between shards mid-run (twice) and the reports must equal an
//!    unmigrated run's, bit-for-bit — alongside the shard-count
//!    invariance already pinned by `tests/serve_invariance.rs`;
//! 3. a cross-pool adoption test: bytes snapshotted out of one service
//!    are revived in a pool of a different shard count.
//!
//! Run with a fixed case count via `PROPTEST_CASES` (CI pins it); on a
//! failure the proptest shim reports the failing case's RNG seed and,
//! when `PROPTEST_FAILURES_FILE` is set, appends it there for artifact
//! upload.

use foreco::prelude::*;
use foreco::serve::session::Advance;
use foreco::serve::snapshot::SessionSnapshot;
use foreco::serve::{shard_of, Session, SessionId};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Deterministic operator wiggle around the home pose for streamed
/// sessions (seeded per case, constant across twins).
fn wiggle(home: &[f64], seed: u64, k: u64) -> Vec<f64> {
    home.iter()
        .enumerate()
        .map(|(j, q)| q + 0.01 * (((seed ^ (k * 31 + j as u64)) % 7) as f64 - 3.0) / 3.0)
        .collect()
}

/// One trained VAR shared by every case (training dominates runtime).
fn shared_var() -> &'static Var {
    static VAR: OnceLock<Var> = OnceLock::new();
    VAR.get_or_init(|| {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
        Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR")
    })
}

fn spec_for(
    id: SessionId,
    op_seed: u64,
    burst_len: usize,
    burst_prob: f64,
    ch_seed: u64,
    foreco: bool,
    model: &ArmModel,
) -> SessionSpec {
    let recovery = if foreco {
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(shared_var().clone()),
            config: RecoveryConfig::for_model(model),
        }
    } else {
        RecoverySpec::Baseline
    };
    SessionSpec::new(
        id,
        SourceSpec::Recorded {
            skill: Skill::Inexperienced,
            cycles: 1,
            seed: op_seed,
        },
        ChannelSpec::ControlledLoss {
            burst_len,
            burst_prob,
            seed: ch_seed,
        },
        recovery,
    )
}

fn run_out(session: &mut Session) -> foreco::serve::SessionReport {
    loop {
        if let Advance::Completed(report) = session.advance() {
            break *report;
        }
    }
}

fn assert_reports_bit_identical(
    a: &foreco::serve::SessionReport,
    b: &foreco::serve::SessionReport,
    context: &str,
) {
    assert_eq!(a.ticks, b.ticks, "{context}: ticks");
    assert_eq!(a.misses, b.misses, "{context}: misses");
    assert_eq!(a.overflow_drops, b.overflow_drops, "{context}: drops");
    assert_eq!(a.stats, b.stats, "{context}: stats");
    assert_eq!(
        a.rmse_mm.to_bits(),
        b.rmse_mm.to_bits(),
        "{context}: rmse {} vs {}",
        a.rmse_mm,
        b.rmse_mm
    );
    assert_eq!(
        a.max_deviation_mm.to_bits(),
        b.max_deviation_mm.to_bits(),
        "{context}: max deviation {} vs {}",
        a.max_deviation_mm,
        b.max_deviation_mm
    );
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(12))]

    /// Freeze → bytes → restore at two random points of a random run;
    /// the resumed session's final report must equal the uninterrupted
    /// twin's bit-for-bit.
    #[test]
    fn snapshot_restore_is_bit_identical(
        op_seed in 0u64..10_000,
        ch_seed in 0u64..10_000,
        burst_len in 1usize..12,
        burst_prob in 0.0f64..0.05,
        cut_a in 0.05f64..0.45,
        cut_b in 0.5f64..0.95,
        foreco in any::<bool>(),
    ) {
        let model = niryo_one();
        let spec = spec_for(1, op_seed, burst_len, burst_prob, ch_seed, foreco, &model);
        let script_len = Dataset::record(Skill::Inexperienced, 1, 0.02, op_seed)
            .commands
            .len();

        let mut straight = Session::open(&spec, &model);
        let mut twin = Session::open(&spec, &model);

        for (label, cut) in [("first", cut_a), ("second", cut_b)] {
            let at = ((script_len as f64 * cut) as u64).max(twin.tick());
            while twin.tick() < at {
                prop_assert!(matches!(twin.advance(), Advance::Ticked(_)));
            }
            let bytes = twin.snapshot().expect("snapshotable").to_bytes();
            let snap = SessionSnapshot::from_bytes(&bytes).expect("decode");
            twin = Session::restore(&snap, &model).expect("restore");
            prop_assert_eq!(twin.tick(), at, "{} cut resumed at the wrong tick", label);
        }

        let a = run_out(&mut straight);
        let b = run_out(&mut twin);
        assert_reports_bit_identical(&a, &b, "roundtrip");
    }

    /// The parked-session contract, end to end: a streamed session goes
    /// silent, reaches its verified idle fixed point, and parks. One
    /// twin ticks eagerly through a long idle span; the other skips it
    /// with `catch_up` and is additionally frozen to bytes and restored
    /// *inside* the parked span. Resumed traffic and the final drain
    /// must then be bit-identical — parking, catch-up, and a parked
    /// checkpoint are all observationally invisible.
    #[test]
    fn parked_snapshot_resumes_bit_identically(
        op_seed in 0u64..10_000,
        ch_seed in 0u64..10_000,
        burst_len in 1usize..10,
        burst_prob in 0.0f64..0.08,
        warm in 8u64..48,
        idle_span in 1u64..20_000,
        resume in 4u64..40,
        foreco in any::<bool>(),
    ) {
        let model = niryo_one();
        let home = model.home();
        let recovery = if foreco {
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(shared_var().clone()),
                config: RecoveryConfig::for_model(&model),
            }
        } else {
            RecoverySpec::Baseline
        };
        let spec = SessionSpec::new(
            21,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 8,
            },
            ChannelSpec::ControlledLoss {
                burst_len,
                burst_prob,
                seed: ch_seed,
            },
            recovery,
        );
        let mut eager = Session::open(&spec, &model);
        let mut parked = Session::open(&spec, &model);
        // Identical live traffic on both twins.
        for k in 0..warm {
            for s in [&mut eager, &mut parked] {
                s.offer(wiggle(&home, op_seed, k));
                prop_assert!(matches!(s.advance(), Advance::Ticked(_)));
            }
        }
        // Starve to the idle fixed point (identical tick for both).
        let park = |s: &mut Session| -> u64 {
            for _ in 0..200_000u32 {
                match s.advance() {
                    Advance::Ticked(foreco::serve::Wake::Runnable) => {}
                    Advance::Ticked(_) | Advance::Idle(_) => return s.tick(),
                    Advance::Completed(_) => panic!("completed while starving"),
                }
            }
            panic!("never parked");
        };
        let at_a = park(&mut eager);
        let at_b = park(&mut parked);
        prop_assert_eq!(at_a, at_b, "twins must park at the same tick");

        // Idle span: eager ticks, parked skips — through a byte freeze.
        for _ in 0..idle_span {
            prop_assert!(matches!(eager.advance(), Advance::Ticked(_)));
        }
        parked.catch_up(idle_span);
        let bytes = parked.snapshot().expect("parked state snapshotable").to_bytes();
        let snap = SessionSnapshot::from_bytes(&bytes).expect("decode");
        let mut parked = Session::restore(&snap, &model).expect("restore");
        prop_assert_eq!(parked.tick(), eager.tick());

        // Wake with fresh traffic; drain out; compare bit for bit.
        for k in 0..resume {
            for s in [&mut eager, &mut parked] {
                s.offer(wiggle(&home, op_seed ^ 0xABCD, k));
                prop_assert!(matches!(s.advance(), Advance::Ticked(_)));
            }
        }
        eager.close();
        parked.close();
        let a = run_out(&mut eager);
        let b = run_out(&mut parked);
        assert_reports_bit_identical(&a, &b, "parked roundtrip");
    }
}

/// Live shard migration mid-run is observationally invisible: a pool
/// where every session is migrated (then migrated again) must produce
/// the same bit-exact reports as an unmigrated pool.
#[test]
fn migration_mid_run_is_bit_identical() {
    const SESSIONS: u64 = 24;
    const SHARDS: usize = 4;
    let model = niryo_one();
    let specs: Vec<SessionSpec> = (0..SESSIONS)
        .map(|id| {
            spec_for(
                id,
                900 + id,
                3 + (id % 6) as usize,
                0.01 + 0.002 * (id % 4) as f64,
                7_000 + id,
                id % 3 != 2,
                &model,
            )
        })
        .collect();

    let baseline =
        Service::spawn(ServiceConfig::with_shards(SHARDS)).run_to_completion(specs.clone());
    assert_eq!(baseline.len() as u64, SESSIONS);

    let service = Service::spawn(ServiceConfig::with_shards(SHARDS));
    let handle = service.handle();
    for spec in specs {
        handle.open(spec).unwrap();
    }
    // First wave: evict every session from its home shard immediately;
    // second wave fires later, racing session progress from another
    // placement. Both must be invisible in the reports.
    for id in 0..SESSIONS {
        handle
            .migrate(id, (shard_of(id, SHARDS) + 1) % SHARDS)
            .unwrap();
    }
    let mut migrated = 0u32;
    let mut second_wave_sent = false;
    let mut reports = Vec::new();
    while reports.len() < SESSIONS as usize {
        match service.next_event().expect("service alive") {
            SessionEvent::Migrated { .. } => migrated += 1,
            SessionEvent::Restored { .. } if !second_wave_sent => {
                second_wave_sent = true;
                for id in 0..SESSIONS {
                    handle
                        .migrate(id, (shard_of(id, SHARDS) + 3) % SHARDS)
                        .unwrap();
                }
            }
            SessionEvent::Completed { id, report } => reports.push((id, report)),
            SessionEvent::SnapshotFailed { id, reason } => {
                panic!("session {id} failed to snapshot: {reason}")
            }
            SessionEvent::RestoreFailed { id, reason } => {
                panic!("session {id} failed to restore: {reason}")
            }
            _ => {}
        }
    }
    service.join();
    assert!(migrated > 0, "no migration ever happened — test is vacuous");

    for (id, report) in &reports {
        let unmigrated = baseline.get(*id).expect("baseline report");
        assert_reports_bit_identical(report, unmigrated, &format!("session {id}"));
    }
}

/// The v1 decode arm stays live: a self-contained snapshot re-rendered
/// in the v1 JSON wire form (the form every pre-store release produced
/// — v1 layouts are a subset of v2, and `to_json_bytes` preserves a v1
/// stamp) must decode through the explicit v1 match arm, restore, and
/// continue bit-identically to the uninterrupted donor twin.
#[test]
fn v1_snapshot_cross_decodes_and_restores_bit_identically() {
    let model = niryo_one();
    let spec = spec_for(31, 5150, 6, 0.015, 777, true, &model);

    let mut straight = Session::open(&spec, &model);
    let solo = run_out(&mut straight);

    let mut donor = Session::open(&spec, &model);
    for _ in 0..150 {
        assert!(matches!(donor.advance(), Advance::Ticked(_)));
    }
    // Masquerade as the oldest release's wire form. A self-contained
    // (non-ScriptedRef) snapshot is layout-identical across v1/v2 JSON,
    // so stamping 1 and rendering JSON *is* a v1 document.
    let mut v1 = donor.snapshot().unwrap();
    v1.version = 1;
    let v1_bytes = v1.to_json_bytes();
    let text = std::str::from_utf8(&v1_bytes).expect("JSON form is UTF-8");
    assert!(text.contains("\"version\":1"), "v1 stamp must survive");
    let snap = SessionSnapshot::from_bytes(&v1_bytes).expect("v1 decode arm");
    assert_eq!(snap.version, 1);

    let mut revived = Session::restore(&snap, &model).expect("v1 restore");
    assert_eq!(revived.tick(), 150);
    let report = run_out(&mut revived);
    assert_reports_bit_identical(&report, &solo, "v1 cross-decode");
}

/// The v2 decode arm stays live alongside v3: the same donor state
/// rendered as legacy v2 JSON (`to_json_bytes`) and as the current
/// binary frame (`to_bytes`) must both decode, agree field-for-field up
/// to the version stamp, and restore bit-identically.
#[test]
fn v2_snapshot_cross_decodes_and_restores_bit_identically() {
    let model = niryo_one();
    let spec = spec_for(33, 6160, 5, 0.02, 888, true, &model);

    let mut straight = Session::open(&spec, &model);
    let solo = run_out(&mut straight);

    let mut donor = Session::open(&spec, &model);
    for _ in 0..170 {
        assert!(matches!(donor.advance(), Advance::Ticked(_)));
    }
    let snapshot = donor.snapshot().unwrap();
    assert_eq!(snapshot.version, foreco::serve::SNAPSHOT_VERSION);

    // Legacy JSON render: stamped v2, decodes through the explicit v2
    // match arm.
    let v2_bytes = snapshot.to_json_bytes();
    let text = std::str::from_utf8(&v2_bytes).expect("JSON form is UTF-8");
    assert!(text.contains("\"version\":2"), "legacy render must stamp 2");
    let from_v2 = SessionSnapshot::from_bytes(&v2_bytes).expect("v2 decode arm");
    assert_eq!(from_v2.version, 2);

    // Binary v3 render of the same state.
    let from_v3 = SessionSnapshot::from_bytes(&snapshot.to_bytes()).expect("v3 decode");
    assert_eq!(from_v3, snapshot, "binary round trip is exact");

    // Same state behind both encodings (version stamp aside).
    let mut restamped = from_v2.clone();
    restamped.version = from_v3.version;
    assert_eq!(restamped, from_v3, "v2 JSON and v3 binary carry one state");

    // And both restore bit-identically.
    for snap in [from_v2, from_v3] {
        let mut revived = Session::restore(&snap, &model).expect("cross-version restore");
        assert_eq!(revived.tick(), 170);
        let report = run_out(&mut revived);
        assert_reports_bit_identical(&report, &solo, "v2→v3 cross-decode");
    }
}

/// Store-backed sessions checkpoint *by reference*: `snapshot_for_fleet`
/// emits a `ScriptedRef` snapshot (content address + RLE fates, no
/// trace rows), and `restore_stored` rehydrates it from a claim — with
/// continued output bit-identical to the uninterrupted donor twin.
#[test]
fn stored_session_fleet_snapshot_restores_bit_identically() {
    use foreco::serve::SourceState;
    use foreco::store::Storage;

    let model = niryo_one();
    let store = Storage::new();
    let dataset = Dataset::record(Skill::Inexperienced, 1, 0.02, 4242);
    let spec = SessionSpec::new(
        41,
        SourceSpec::stored(&store, &dataset),
        ChannelSpec::ControlledLoss {
            burst_len: 7,
            burst_prob: 0.02,
            seed: 123,
        },
        RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(shared_var().clone()),
            config: RecoveryConfig::for_model(&model),
        },
    );

    let mut straight = Session::open(&spec, &model);
    let solo = run_out(&mut straight);

    let mut donor = Session::open(&spec, &model);
    for _ in 0..180 {
        assert!(matches!(donor.advance(), Advance::Ticked(_)));
    }
    let (snap, trace) = donor.snapshot_for_fleet().expect("fleet snapshot");
    let (trace_id, _payload) = trace.expect("scripted source must export its trace ref");
    match &snap.source {
        SourceState::ScriptedRef { trace, .. } => assert_eq!(*trace, trace_id),
        other => panic!("expected ScriptedRef, got {other:?}"),
    }
    // The by-reference snapshot survives a byte round trip and is far
    // smaller than the materialized form.
    let bytes = snap.to_bytes();
    let snap = SessionSnapshot::from_bytes(&bytes).unwrap();
    let inline = snap
        .materialized(&dataset.commands)
        .expect("rehydrate inline")
        .to_bytes();
    assert!(
        bytes.len() * 4 < inline.len(),
        "by-reference snapshot ({}) must be much smaller than inline ({})",
        bytes.len(),
        inline.len()
    );

    let handle = store.get_trace(trace_id).expect("trace still claimed");
    let mut revived = Session::restore_stored(&snap, &model, handle).expect("restore from claim");
    assert_eq!(revived.tick(), 180);
    let report = run_out(&mut revived);
    assert_reports_bit_identical(&report, &solo, "stored fleet snapshot");
}

/// A checkpoint taken in one pool revives in a pool of a different
/// shard count — snapshots carry no placement assumptions.
#[test]
fn adoption_across_pool_sizes_is_bit_identical() {
    let model = niryo_one();
    let spec = spec_for(11, 4321, 8, 0.02, 999, true, &model);

    let mut straight = Session::open(&spec, &model);
    let solo = run_out(&mut straight);

    let mut donor = Session::open(&spec, &model);
    for _ in 0..200 {
        assert!(matches!(donor.advance(), Advance::Ticked(_)));
    }
    let bytes = donor.snapshot().unwrap().to_bytes();

    let pool = Service::spawn(ServiceConfig::with_shards(3));
    let snapshot = SessionSnapshot::from_bytes(&bytes).unwrap();
    pool.handle().adopt(snapshot).unwrap();
    let report = loop {
        match pool.next_event().expect("service alive") {
            SessionEvent::Restored { id, tick, .. } => {
                assert_eq!(id, 11);
                assert_eq!(tick, 200);
            }
            SessionEvent::Completed { report, .. } => break report,
            other => panic!("unexpected event {other:?}"),
        }
    };
    pool.join();
    assert_reports_bit_identical(&report, &solo, "adopted");
}
