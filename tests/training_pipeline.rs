//! Integration tests of the train-at-the-edge → deploy-to-the-robot flow
//! (the Table-I/II pipeline) through the public API.

use foreco::forecast::pipeline::{self, PipelineConfig};
use foreco::prelude::*;

#[test]
fn pipeline_model_deploys_into_recovery() {
    // Train through the staged pipeline, then use the produced model in a
    // live recovery loop.
    let train = Dataset::record(Skill::Experienced, 4, 0.02, 10);
    let run = pipeline::run(&train, &PipelineConfig::default()).expect("pipeline");
    assert!(run.quality.is_acceptable(train.len()));
    assert!(run.timings.train > 0.0);

    let model = niryo_one();
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 20);
    let engine = RecoveryEngine::new(
        Box::new(run.model),
        RecoveryConfig::for_model(&model),
        model.clamp(&test.commands[0]),
    );
    let fates = ControlledLossChannel::new(10, 0.01, 3).fates(test.commands.len());
    let res = run_closed_loop(
        &model,
        &test.commands,
        &fates,
        RecoveryMode::FoReCo(engine),
        DriverConfig::default(),
    );
    assert!(res.rmse_mm < 100.0, "rmse {}", res.rmse_mm);
}

#[test]
fn downsampled_pipeline_still_produces_usable_model() {
    let train = Dataset::record(Skill::Experienced, 4, 0.02, 11);
    let cfg = PipelineConfig {
        downsample: 2,
        ..Default::default()
    };
    let run = pipeline::run(&train, &cfg).expect("pipeline");
    // A 25 Hz model still forecasts finite commands.
    let hist = vec![train.commands[0].clone(); 10];
    let pred = run.model.forecast(&hist);
    assert!(pred.iter().all(|v| v.is_finite()));
}

#[test]
fn quality_check_blocks_corrupt_data_from_silent_training() {
    let mut train = Dataset::record(Skill::Experienced, 2, 0.02, 12);
    train.commands[100][3] = f64::NAN;
    let quality = pipeline::check_quality(&train, &PipelineConfig::default());
    assert!(!quality.is_acceptable(train.len()));
    // And the OLS layer independently refuses non-finite input.
    assert!(Var::fit_differenced(&train, 5, 1e-6).is_err());
}

/// The paper's α/β split: train on the first α, evaluate on the rest.
#[test]
fn alpha_beta_split_workflow() {
    let all = Dataset::record(Skill::Experienced, 4, 0.02, 13);
    let (train, test) = all.split(0.8);
    assert!(train.len() > test.len());
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit");
    let rmse = foreco::forecast::one_step_rmse(&var, &test);
    // Same operator, held-out portion: sub-centiradian accuracy.
    assert!(rmse < 0.02, "one-step joint rmse {rmse}");
}
