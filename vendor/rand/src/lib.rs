//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The container building this repository has no access to crates.io, so
//! the real `rand` cannot be fetched. This shim keeps the public surface
//! source-compatible while implementing the generator in-tree:
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong for simulation purposes. It does NOT
//! reproduce the exact stream of upstream `StdRng` (ChaCha12) and is not
//! cryptographically secure; nothing in this workspace needs either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A random generator seedable from integers or raw bytes.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64-expanded, the
    /// same convention upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1) — rand's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire widening-multiply map: unbiased enough for
                // simulation (bias < 2^-64 per draw).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Raw xoshiro256++ state, for snapshot/restore of mid-stream
        /// generators. The four words fully determine the future stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state previously returned by
        /// [`StdRng::state`]. The all-zero state (invalid for xoshiro) is
        /// mapped to the same fallback constants as [`SeedableRng::from_seed`].
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(5);
        for _ in 0..17 {
            a.gen::<f64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn zero_state_maps_to_seed_fallback() {
        let mut a = StdRng::from_state([0; 4]);
        let mut b = StdRng::from_seed([0u8; 32]);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<f64>().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<f64>().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
