//! Offline stand-in for the `proptest` surface this workspace uses.
//!
//! The container building this repository cannot reach crates.io. This
//! shim keeps the property tests compiling and *running* — each
//! `proptest!` test samples its strategies for `ProptestConfig::cases`
//! deterministic cases (seeded from the test name and case index) and
//! executes the body with plain `assert!` semantics. There is no input
//! shrinking: a failure reports the case's seed instead, which is enough
//! to reproduce it by re-running the test.
//!
//! Supported strategy surface: ranges over ints and floats,
//! [`collection::vec`], [`option::of`], [`any`] for `bool`/ints/floats,
//! `Just`, and `Strategy::prop_map`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Configuration taking the case count from the `PROPTEST_CASES`
    /// environment variable (mirroring the real proptest), falling back
    /// to `default_cases` when unset or unparsable. CI pins the variable
    /// so the determinism suite explores a fixed, reproducible set.
    pub fn env_or(default_cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_cases);
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::env_or(64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for `T` (use as `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind [`any`] for primitives.
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_via {
    ($($t:ty => $body:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $body;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_via! {
    bool => |rng| rng.gen::<f64>() < 0.5,
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    f64 => |rng| rng.gen::<f64>() * 2e6 - 1e6,
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with the given length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy type returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy yielding `None` 25% of the time, `Some(inner)` otherwise
    /// (the real proptest default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy type returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen::<f64>() < 0.25 {
                None
            } else {
                Some(self.inner.sample_value(rng))
            }
        }
    }
}

/// Support machinery used by the generated tests.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case RNG: seeded from the test name and case
    /// index so every run of the suite explores the same inputs.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        StdRng::seed_from_u64(seed_for(test_name, case))
    }

    /// The `seed_from_u64` seed behind [`rng_for`] — reported on failure
    /// so a failing case can be replayed in isolation.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32) ^ case as u64
    }

    /// Drop guard armed around each case body: if the case panics, the
    /// guard reports the test name, case index, and RNG seed to stderr
    /// and — when `PROPTEST_FAILURES_FILE` is set — appends a line to
    /// that file so CI can upload the failing seeds as an artifact.
    /// Normal completion (including `prop_assume!` skips, which exit the
    /// case via `continue`) disarms silently.
    pub struct CaseGuard {
        test_name: &'static str,
        case: u32,
    }

    impl CaseGuard {
        /// Arms a guard for one case.
        pub fn new(test_name: &'static str, case: u32) -> Self {
            Self { test_name, case }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if !std::thread::panicking() {
                return;
            }
            let seed = seed_for(self.test_name, self.case);
            let line = format!(
                "proptest failure: {} case {} (rng seed {seed:#018x}; replay with \
                 rng_for(\"{}\", {}))",
                self.test_name, self.case, self.test_name, self.case
            );
            eprintln!("{line}");
            if let Ok(path) = std::env::var("PROPTEST_FAILURES_FILE") {
                use std::io::Write;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(f, "{line}");
                }
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Namespace alias so `prop::collection::vec(..)` paths work.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)`
/// becomes a regular test that samples the strategies for
/// `ProptestConfig::cases` deterministic cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let __guard =
                        $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                    let mut __rng =
                        $crate::test_runner::rng_for(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::Strategy::sample_value(&($strat), &mut __rng);
                    )*
                    $body
                    ::core::mem::drop(__guard);
                }
            }
        )*
    };
}

/// Skips the current case when the assumption does not hold. Only valid
/// inside a `proptest!` body (it expands to `continue` on the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..20) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..20).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(xs in crate::collection::vec(0u64..50, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&v| v < 50));
        }

        #[test]
        fn prop_map_applies(m in (0i32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(m % 2, 0);
            prop_assert!((0..20).contains(&m));
        }

        #[test]
        fn option_of_yields_both(o in crate::option::of(0u32..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for("t", c);
                Strategy::sample_value(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for("t", c);
                Strategy::sample_value(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
