//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde shim.
//!
//! The real `serde_derive` (and its syn/quote dependency tree) cannot be
//! fetched in this container, so this crate parses the item token stream
//! by hand. Supported shapes — everything the workspace derives on:
//!
//! - structs with named fields;
//! - unit structs and tuple structs;
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce
//! a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum; each variant is `(name, shape)`.
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) tokens.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a braced named-field list.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type: consume until a top-level comma outside angle
        // brackets. Generic commas (`Foo<A, B>`) hide behind depth > 0;
        // bracket/paren commas hide inside Group trees automatically.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    Ok(fields)
}

/// Counts unnamed fields in a parenthesised tuple field list.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut in_field = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    in_field = false;
                    continue;
                }
                if !in_field {
                    in_field = true;
                    arity += 1;
                }
            }
            _ => {
                if !in_field {
                    in_field = true;
                    arity += 1;
                }
            }
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            } else {
                return Err(format!("unexpected punct after variant `{name}`"));
            }
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic item `{name}` is not supported by the serde shim derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derives the shim's `serde::Serialize` (`fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Object(vec![{entries}])
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let entries: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Array(vec![{entries}])
                    }}
                }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}
            }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),")
                    }
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),"
                    ),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let items: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Object(vec![{items}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    src.parse().unwrap()
}

/// Derives the shim's `serde::Deserialize`
/// (`fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__obj.iter()\
                         .find(|(k, _)| k == \"{f}\").map(|(_, v)| v)\
                         .unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.field(\"{name}.{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{
                        let __obj = v.as_object().ok_or_else(|| \
                            ::serde::Error::new(\"expected object for {name}\"))?;
                        Ok({name} {{ {entries} }})
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let entries: String = (0..arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__arr.get({i})\
                         .unwrap_or(&::serde::Value::Null))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{
                        let __arr = v.as_array().ok_or_else(|| \
                            ::serde::Error::new(\"expected array for {name}\"))?;
                        Ok({name}({entries}))
                    }}
                }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{
                    Ok({name})
                }}
            }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let entries: String = (0..*arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(__items.get({i})\
                                     .unwrap_or(&::serde::Value::Null))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{
                                let __items = __inner.as_array().ok_or_else(|| \
                                    ::serde::Error::new(\"expected array for {name}::{v}\"))?;
                                Ok({name}::{v}({entries}))
                            }}"
                        ))
                    }
                    VariantShape::Struct(fields) => {
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__items.iter()\
                                     .find(|(k, _)| k == \"{f}\").map(|(_, v)| v)\
                                     .unwrap_or(&::serde::Value::Null))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{
                                let __items = __inner.as_object().ok_or_else(|| \
                                    ::serde::Error::new(\"expected object for {name}::{v}\"))?;
                                Ok({name}::{v} {{ {entries} }})
                            }}"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{
                        match v {{
                            ::serde::Value::String(__s) => match __s.as_str() {{
                                {unit_arms}
                                other => Err(::serde::Error::new(&format!(
                                    \"unknown {name} variant: {{other}}\"))),
                            }},
                            ::serde::Value::Object(__o) if __o.len() == 1 => {{
                                let (__tag, __inner) = &__o[0];
                                match __tag.as_str() {{
                                    {tagged_arms}
                                    other => Err(::serde::Error::new(&format!(
                                        \"unknown {name} variant: {{other}}\"))),
                                }}
                            }}
                            _ => Err(::serde::Error::new(\"expected string or 1-key object for {name}\")),
                        }}
                    }}
                }}"
            )
        }
    };
    src.parse().unwrap()
}
