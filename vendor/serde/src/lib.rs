//! Offline stand-in for the `serde` surface this workspace uses.
//!
//! The container building this repository cannot reach crates.io, so the
//! real serde cannot be fetched. This shim keeps call sites
//! source-compatible — `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` — while implementing a much
//! smaller contract: every serialisable type converts to and from the
//! JSON-shaped [`Value`] tree, and the sibling `serde_json` shim renders
//! that tree to text. The full serde data model (serializer traits,
//! zero-copy deserialisation, formats other than JSON) is intentionally
//! out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::VecDeque;
use std::fmt;

/// A JSON-shaped value tree — the common currency of the shim.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): field
/// order round-trips and duplicate handling is "first wins" on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (f64 covers every count this workspace serialises).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrows the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: &str) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// Returns the error with field context appended (used by derives).
    pub fn field(mut self, path: &str) -> Self {
        self.msg = format!("{} (at {path})", self.msg);
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    _ => Err(Error::new(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_num!(f64, f32, u8, u16, u32, i8, i16, i32);

/// Largest integer magnitude an `f64` mantissa carries exactly (2⁵³).
const EXACT_F64_INT: u64 = 1 << 53;

macro_rules! impl_big_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // 64-bit integers overflow the f64 mantissa: values beyond
                // ±2⁵³ (e.g. raw RNG state words) serialise as decimal
                // strings so snapshot round-trips stay lossless, while
                // small counters keep their plain-number JSON shape.
                if (*self as i128).unsigned_abs() <= EXACT_F64_INT as u128 {
                    Value::Number(*self as f64)
                } else {
                    Value::String(self.to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    Value::String(s) => s.parse::<$t>().map_err(|_| {
                        Error::new(concat!("invalid integer string for ", stringify!($t)))
                    }),
                    _ => Err(Error::new(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_big_int!(u64, usize, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::new("expected array for Vec")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::new("expected array for VecDeque")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(&format!("expected array of length {N}, got {got}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::new("expected 2-element array for tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::new("expected 3-element array for tuple")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
