//! Offline stand-in for the `criterion` surface this workspace uses:
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, and `Bencher::iter`.
//!
//! The container building this repository cannot reach crates.io, so the
//! real criterion (and its plotting/statistics stack) cannot be fetched.
//! This shim measures each benchmark with `std::time::Instant` over a
//! fixed number of timed samples and prints a `name  median  min..max`
//! line — enough to track relative regressions in CI logs, with none of
//! the statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which is what this resolves to).
pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed_ns: 0,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            durations.push(b.elapsed_ns as f64 / b.iters as f64);
        }
    }
    durations.sort_by(|a, b| a.total_cmp(b));
    if durations.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let median = durations[durations.len() / 2];
    let min = durations[0];
    let max = durations[durations.len() - 1];
    println!(
        "  {name}: median {} (min {}, max {})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then time a small batch.
        black_box(routine());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += iters;
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn direct_bench_function_runs() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
