//! Offline stand-in for the `serde_json` calls this workspace makes:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], rendering the
//! shim [`Value`] tree to JSON text and back.
//!
//! Floats are written with Rust's shortest-round-trip formatting, so any
//! finite `f64` survives `to_string` → `from_str` bit-exactly. Non-finite
//! floats serialise to `null` (the real serde_json convention).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 1e15 && !(*n == 0.0 && n.is_sign_negative()) {
                // (-0.0 is excluded: casting it to i64 would print "0"
                // and break bit-exact round-trips.)
                // Integral values print without the trailing ".0" so
                // counters look like JSON integers.
                out.push_str(&format!("{}", *n as i64));
            } else {
                // `{:?}` is shortest-round-trip for f64.
                out.push_str(&format!("{n:?}"));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(&format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' | b'f' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid keyword"))
                }
            }
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid keyword"))
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(&format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            (
                "name".into(),
                Value::String("π ≈ 3.14159 \"quoted\"\n".into()),
            ),
            (
                "data".into(),
                Value::Array(vec![
                    Value::Number(1.5),
                    Value::Number(-0.25),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("count".into(), Value::Number(42.0)),
        ]);
        let json = to_string(&v).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[
            0.1,
            1e-300,
            123456.789,
            f64::MIN_POSITIVE,
            0.020_000_000_000_000_004,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} → {json}");
        }
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(to_string(&7.0f64).unwrap(), "7");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }

    #[test]
    fn negative_zero_round_trips_bit_exactly() {
        let json = to_string(&-0.0f64).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits(), "-0.0 → {json}");
    }

    #[test]
    fn big_u64_round_trips_losslessly() {
        // Raw xoshiro state words overflow the f64 mantissa; they must
        // take the string path and come back exact.
        for &x in &[u64::MAX, 0x9E37_79B9_7F4A_7C15, (1 << 53) + 1, 1 << 53, 42] {
            let json = to_string(&x).unwrap();
            let back: u64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{x} → {json}");
        }
        assert!(to_string(&u64::MAX).unwrap().starts_with('"'));
        assert_eq!(to_string(&42u64).unwrap(), "42");
    }

    #[test]
    fn triples_round_trip() {
        let v: Vec<(f64, usize, Vec<f64>)> = vec![(0.25, 7, vec![1.5, -2.5])];
        let json = to_string(&v).unwrap();
        let back: Vec<(f64, usize, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "xs".into(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("hello").is_err());
    }
}
