//! How many robots can one 802.11 channel carry? Sweep the factory-floor
//! density and watch the channel, the baseline, and FoReCo degrade.
//!
//! ```sh
//! cargo run --release --example multi_robot_floor -- --prob 0.025 --duration 50
//! ```

use foreco::prelude::*;

fn main() {
    let mut prob = 0.025f64;
    let mut duration = 50u32;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--prob" => prob = argv[i + 1].parse().expect("--prob: float"),
            "--duration" => duration = argv[i + 1].parse().expect("--duration: slots"),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    println!(
        "== factory-floor density sweep (p_if = {:.1} %, T_if = {duration} slots) ==\n",
        prob * 100.0
    );

    let train = Dataset::record(Skill::Experienced, 5, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit");
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
    let model = niryo_one();
    let commands = &test.commands;

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "robots", "miss rate", "mean ΔW[ms]", "no-fc [mm]", "FoReCo [mm]", "factor"
    );
    for robots in [1usize, 5, 10, 15, 20, 25, 30] {
        let interference = if prob > 0.0 {
            Interference::new(prob, duration)
        } else {
            Interference::none()
        };
        let link = LinkConfig {
            stations: robots,
            interference,
            ..LinkConfig::default()
        };
        let solution = DcfModel {
            params: link.params,
            stations: robots,
            interference,
            offered_interval: Some(link.period),
        }
        .solve();
        let mut channel = JammedChannel::new(link, 0.0, 900 + robots as u64);
        let fates = channel.fates(commands.len());
        let miss = fates.iter().filter(|f| !f.on_time()).count() as f64 / fates.len() as f64;

        let base = run_closed_loop(
            &model,
            commands,
            &fates,
            RecoveryMode::Baseline,
            DriverConfig::default(),
        );
        let engine = RecoveryEngine::new(
            Box::new(var.clone()),
            RecoveryConfig::for_model(&model),
            model.clamp(&commands[0]),
        );
        let fore = run_closed_loop(
            &model,
            commands,
            &fates,
            RecoveryMode::FoReCo(engine),
            DriverConfig::default(),
        );
        // Below half a millimetre both trajectories are visually identical;
        // a ratio of noise against noise is not informative.
        let factor = if base.rmse_mm > 0.5 {
            format!("{:>10.1}", base.rmse_mm / fore.rmse_mm.max(1e-9))
        } else {
            format!("{:>10}", "—")
        };
        println!(
            "{robots:<8} {miss:>10.3} {:>12.2} {:>12.2} {:>12.2} {factor}",
            solution.mean_delay_delivered * 1e3,
            base.rmse_mm,
            fore.rmse_mm,
        );
    }
    println!("\nFoReCo extends the usable density of the floor: the robot count at which");
    println!("the trajectory error exceeds a given budget moves right by several robots.");
}
