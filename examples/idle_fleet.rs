//! A production-shaped fleet: thousands of mostly-idle streamed
//! teleoperation sessions with a handful of hot ones, hosted by the
//! event-driven scheduler with the load balancer on.
//!
//! Silent sessions run through FoReCo's forecast horizon, settle at
//! their idle fixed point, and park — costing zero scheduler work until
//! traffic returns, at which point their missed slots are replayed
//! exactly. The printed load picture shows what that buys: the pool
//! touches ~`active` sessions per tick, not ~`fleet`, and the balancer
//! keeps the live work spread across shards.
//!
//! ```sh
//! cargo run --release --example idle_fleet -- --sessions 4096 --hot 64 --shards 4
//! ```

use foreco::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let mut sessions: u64 = 4096;
    let mut hot: u64 = 64;
    let mut shards: usize = 4;
    let mut seconds: u64 = 5;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--sessions" => sessions = argv[i + 1].parse().expect("--sessions: count"),
            "--hot" => hot = argv[i + 1].parse().expect("--hot: count"),
            "--shards" => shards = argv[i + 1].parse().expect("--shards: count"),
            "--seconds" => seconds = argv[i + 1].parse().expect("--seconds: duration"),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let hot = hot.min(sessions);
    println!(
        "== idle fleet: {sessions} streamed sessions ({hot} hot) × {shards} shards, \
         event-driven scheduler + balancer ==\n"
    );

    // One trained forecaster for the whole fleet.
    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let forecaster = SharedForecaster::new(var);
    let home = model.home();

    let service = Service::spawn(ServiceConfig {
        shards,
        control_capacity: 4096,
        event_capacity: sessions as usize * 3 + 1024,
        balancer: Some(BalancerConfig::default()),
        ..Default::default()
    });
    let handle = service.handle();
    for id in 0..sessions {
        handle
            .open(SessionSpec::new(
                id,
                SourceSpec::Streamed {
                    initial: home.clone(),
                    inbox_capacity: 8,
                },
                ChannelSpec::ControlledLoss {
                    burst_len: 6,
                    burst_prob: 0.015,
                    seed: 70_000 + id,
                },
                RecoverySpec::FoReCo {
                    forecaster: forecaster.clone(),
                    config: RecoveryConfig::for_model(&model),
                },
            ))
            .expect("open session");
    }
    println!("fleet opened; waiting for the silent majority to park…");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let parked: u64 = handle.shard_loads().iter().map(|l| l.parked).sum();
        if parked == sessions {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never parked");
        while let EventWait::Event(_) = service.next_event_timeout(Duration::ZERO) {}
        std::thread::sleep(Duration::from_millis(5));
    }
    let baseline = handle.shard_loads();
    println!("entire fleet parked — scheduler work is now zero.\n");

    // Hot phase: drive the hot subset at ~1 kHz of injects for a while,
    // printing the per-shard picture once a second.
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "shard", "sessions", "runnable", "parked", "wakeups/pass", "migrations"
    );
    let started = Instant::now();
    let mut round: u64 = 0;
    let mut next_report = started + Duration::from_secs(1);
    while started.elapsed() < Duration::from_secs(seconds) {
        for id in 0..hot {
            let mut cmd = home.clone();
            let joint = (round as usize) % home.len();
            cmd[joint] += 0.012 * ((round % 7) as f64 - 3.0) / 3.0;
            let _ = handle.inject(id, cmd); // backpressure = loss, by design
        }
        while let EventWait::Event(_) = service.next_event_timeout(Duration::ZERO) {}
        std::thread::sleep(Duration::from_millis(1));
        round += 1;
        if Instant::now() >= next_report {
            next_report += Duration::from_secs(1);
            for load in handle.shard_loads() {
                println!(
                    "{:>6} {:>10} {:>10} {:>10} {:>14.2} {:>12}",
                    load.shard,
                    load.sessions,
                    load.runnable,
                    load.parked,
                    load.wakeups_per_pass(),
                    load.migrated_in + load.migrated_out,
                );
            }
            println!();
        }
    }

    // Fleet-wide verdict over the hot phase alone.
    let sample = handle.shard_loads();
    let wakeups_per_tick: f64 = sample
        .iter()
        .zip(&baseline)
        .map(|(s, b)| {
            let passes = s.passes - b.passes;
            if passes == 0 {
                0.0
            } else {
                (s.wakeups - b.wakeups) as f64 / passes as f64
            }
        })
        .sum();
    let migrations: u64 = sample
        .iter()
        .zip(&baseline)
        .map(|(s, b)| s.migrated_out - b.migrated_out)
        .sum();
    println!(
        "hot phase: pool touched {wakeups_per_tick:.1} sessions/tick for a {sessions}-session \
         fleet ({hot} hot); balancer migrated {migrations} live sessions"
    );

    // Close everything; parked sessions wake, replay their idle
    // backlog exactly, and report.
    println!("closing the fleet…");
    let mut completed: u64 = 0;
    let mut registry = MetricsRegistry::new();
    for id in 0..sessions {
        handle.close(id).expect("close");
        while let EventWait::Event(e) = service.next_event_timeout(Duration::ZERO) {
            if let SessionEvent::Completed { report, .. } = e {
                registry.record(report);
                completed += 1;
            }
        }
    }
    while completed < sessions {
        match service.next_event() {
            Some(SessionEvent::Completed { report, .. }) => {
                registry.record(report);
                completed += 1;
            }
            Some(_) => {}
            None => panic!("service died before every report"),
        }
    }
    registry.record_shard_loads(handle.shard_loads());
    service.join();
    let summary = registry.summary().expect("sessions completed");
    println!(
        "\n{} sessions reported: {} total ticks, {} misses covered, rmse p50 {:.2} mm / p99 {:.2} mm",
        summary.sessions,
        summary.total_ticks,
        summary.total_misses,
        summary.rmse_mm.p50,
        summary.rmse_mm.p99
    );
}
