//! Quickstart: train a forecaster, lose some commands, watch FoReCo
//! conceal the losses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use foreco::prelude::*;

fn main() {
    println!("== FoReCo quickstart ==\n");

    // 1. Record an experienced operator doing pick-and-place repetitions
    //    (the paper trains on the experienced dataset, §VI-A).
    println!("recording training data (experienced operator)…");
    let train = Dataset::record(Skill::Experienced, 5, 0.02, 42);
    println!(
        "  {} commands over {} cycles",
        train.len(),
        train.cycle_starts.len()
    );

    // 2. Fit the paper's winning forecaster: VAR trained with OLS.
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("training data is well-conditioned");
    println!("  VAR(R=5) fitted: {} weights\n", var.num_params());

    // 3. The test stream comes from a *different* (inexperienced)
    //    operator — related but not identical data, like the paper.
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 1234);
    let model = niryo_one();

    // 4. A channel that drops bursts of 10 consecutive commands.
    let make_fates = || ControlledLossChannel::new(10, 0.01, 7).fates(test.commands.len());

    // 5. Baseline: the Niryo stack repeats the last command on a miss.
    let baseline = run_closed_loop(
        &model,
        &test.commands,
        &make_fates(),
        RecoveryMode::Baseline,
        DriverConfig::default(),
    );

    // 6. FoReCo: forecast the missing commands and inject them.
    let engine = RecoveryEngine::new(
        Box::new(var),
        RecoveryConfig::for_model(&model),
        model.clamp(&test.commands[0]),
    );
    let foreco = run_closed_loop(
        &model,
        &test.commands,
        &make_fates(),
        RecoveryMode::FoReCo(engine),
        DriverConfig::default(),
    );

    println!(
        "channel: bursts of 10 consecutive losses ({} misses)\n",
        baseline.misses
    );
    println!(
        "  no forecasting : RMSE {:6.2} mm (worst {:6.2} mm)",
        baseline.rmse_mm, baseline.max_deviation_mm
    );
    println!(
        "  FoReCo         : RMSE {:6.2} mm (worst {:6.2} mm)",
        foreco.rmse_mm, foreco.max_deviation_mm
    );
    println!(
        "  improvement    : x{:.1}",
        baseline.rmse_mm / foreco.rmse_mm.max(1e-9)
    );
    let stats = foreco.stats.expect("FoReCo mode records stats");
    println!(
        "\nrecovery stats: {} delivered, {} forecast, {} warm-up repeats",
        stats.delivered, stats.forecasts, stats.warmup_repeats
    );
}
