//! Compare every forecaster in the library on the same teleop data —
//! a live version of the paper's Fig. 7 plus the §VII-C extensions.
//!
//! ```sh
//! cargo run --release --example forecaster_shootout
//! ```

use foreco::forecast::{one_step_rmse, Seq2SeqTrainConfig};
use foreco::prelude::*;
use foreco::recovery::metrics;

fn main() {
    println!("== forecaster shootout ==\n");
    println!("training: experienced operator; testing: inexperienced operator\n");
    let train = Dataset::record(Skill::Experienced, 5, 0.02, 100);
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 200);
    let model = niryo_one();

    let mut entries: Vec<(String, Box<dyn Forecaster>)> = vec![
        ("MA(R=5)".into(), Box::new(MovingAverage::new(5, 6))),
        (
            "VAR(R=5, levels — literal eq. 5)".into(),
            Box::new(Var::fit(&train, 5, 1e-6).expect("fit")),
        ),
    ];
    entries.push((
        "VAR(R=5, differenced — deployed)".into(),
        Box::new(Var::fit_differenced(&train, 5, 1e-6).expect("fit")),
    ));
    entries.push((
        "Holt(α=0.8, β=0.3)".into(),
        Box::new(Holt::default_teleop(6, 6)),
    ));
    entries.push((
        "VARMA(4,2)".into(),
        Box::new(Varma::fit(&train, 4, 2, 1e-6).expect("fit")),
    ));
    let s2s_cfg = Seq2SeqTrainConfig {
        r: 5,
        epochs: 2,
        subsample: 16,
        ..Default::default()
    };
    println!(
        "training seq2seq ({} windows, paper-scale 200/30 LSTM)…",
        (train.len() - 5) / 16
    );
    entries.push((
        "seq2seq(200/30 ReLU)".into(),
        Box::new(Seq2SeqForecaster::fit(&train, &s2s_cfg)),
    ));

    println!(
        "\n{:<36} {:>14} {:>16}",
        "forecaster", "1-step [rad]", "20-step [mm]"
    );
    for (name, f) in &entries {
        let joint = one_step_rmse(f.as_ref(), &test);
        // Multi-step task-space RMSE: forecast 20 commands ahead from
        // every 40th window, compare in millimetres through the FK.
        let r = f.history_len();
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        let mut idx = r;
        while idx + 20 < test.commands.len() {
            let hist = &test.commands[idx - r..idx];
            let horizon = forecast_horizon(f.as_ref(), hist, 20);
            preds.push(horizon.last().expect("20 steps").clone());
            actuals.push(test.commands[idx + 19].clone());
            idx += 40;
        }
        let task = metrics::command_rmse_mm(&model, &preds, &actuals);
        println!("{name:<36} {joint:>14.5} {task:>16.2}");
    }
    println!("\n(the paper's Fig. 7 ordering: VAR ≤ MA ≪ seq2seq)");
}
