//! The edge service at scale: 256 concurrent teleoperation sessions on a
//! 4-shard pool, every one of them fighting the same jammed 802.11
//! channel, with one shared trained VAR covering the losses.
//!
//! Prints the service-wide task-space error distribution — at scale the
//! metric that matters is the p99 operator's experience, not the mean.
//!
//! ```sh
//! cargo run --release --example teleop_service -- --sessions 256 --shards 4
//! ```

use foreco::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut sessions: u64 = 256;
    let mut shards: usize = 4;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--sessions" => sessions = argv[i + 1].parse().expect("--sessions: count"),
            "--shards" => shards = argv[i + 1].parse().expect("--shards: count"),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    println!("== foreco-serve: {sessions} sessions × {shards} shards over a jammed channel ==\n");

    // One operator dataset and one trained forecaster, shared by every
    // session (training is the expensive part; forecasting is `&self`).
    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 5, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let forecaster = SharedForecaster::new(var);
    let replay = Arc::new(Dataset::record(Skill::Inexperienced, 2, 0.02, 8).commands);
    println!(
        "dataset: {} commands/session, forecaster: {}",
        replay.len(),
        forecaster.name()
    );

    // Every session sees its own interference realisation (seeded by
    // id) of the same Fig.-8-style jammed link.
    let link = LinkConfig {
        stations: 15,
        interference: Interference::new(0.025, 50),
        ..Default::default()
    };
    let specs: Vec<SessionSpec> = (0..sessions)
        .map(|id| {
            SessionSpec::new(
                id,
                SourceSpec::Replayed(Arc::clone(&replay)),
                ChannelSpec::Jammed {
                    link,
                    tolerance: 0.0,
                    seed: 1000 + id,
                },
                RecoverySpec::FoReCo {
                    forecaster: forecaster.clone(),
                    config: RecoveryConfig::for_model(&model),
                },
            )
        })
        .collect();

    let started = Instant::now();
    let service = Service::spawn(ServiceConfig {
        shards,
        ..Default::default()
    });
    let registry = service.run_to_completion(specs);
    let elapsed = started.elapsed();

    let s = registry.summary().expect("sessions completed");
    let tick_rate = s.total_ticks as f64 / elapsed.as_secs_f64();
    println!(
        "\ncompleted {} sessions in {:.2?} ({:.0} session-ticks/s)",
        s.sessions, elapsed, tick_rate
    );
    println!(
        "misses: {} of {} ticks ({:.2} %), recovered by {} forecasts + {} warmup repeats + {} holds",
        s.total_misses,
        s.total_ticks,
        100.0 * s.total_misses as f64 / s.total_ticks as f64,
        s.recovery.forecasts,
        s.recovery.warmup_repeats,
        s.recovery.horizon_holds,
    );
    println!("\ntask-space error across sessions (mm):");
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "mean", "p50", "p90", "p99", "max"
    );
    println!(
        "{:>12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "rmse", s.rmse_mm.mean, s.rmse_mm.p50, s.rmse_mm.p90, s.rmse_mm.p99, s.rmse_mm.max
    );
    println!(
        "{:>12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "worst dev",
        s.max_deviation_mm.mean,
        s.max_deviation_mm.p50,
        s.max_deviation_mm.p90,
        s.max_deviation_mm.p99,
        s.max_deviation_mm.max
    );
}
