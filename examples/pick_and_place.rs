//! Full pick-and-place teleoperation session with trajectory output.
//!
//! Recreates the paper's §VI-D-1 controlled experiment: isolated bursts of
//! exactly N consecutive losses, trajectories printed as
//! `time  defined  no-forecast  FoReCo` columns (distance from origin in
//! mm — the axes of Figs. 6, 9 and 10), ready for a plotting tool.
//!
//! ```sh
//! cargo run --release --example pick_and_place -- --burst 25 > trajectory.tsv
//! ```

use foreco::prelude::*;
use foreco::recovery::metrics;

fn main() {
    let mut burst = 10usize;
    let mut seed = 11u64;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--burst" => burst = argv[i + 1].parse().expect("--burst: integer"),
            "--seed" => seed = argv[i + 1].parse().expect("--seed: integer"),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    eprintln!("pick-and-place with bursts of {burst} consecutive losses (seed {seed})");

    let train = Dataset::record(Skill::Experienced, 5, 0.02, seed.wrapping_add(1));
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit");
    let test = Dataset::record(Skill::Inexperienced, 1, 0.02, seed.wrapping_add(2));
    let model = niryo_one();

    let fates = ControlledLossChannel::new(burst, 0.005, seed).fates(test.commands.len());

    let baseline = run_closed_loop(
        &model,
        &test.commands,
        &fates,
        RecoveryMode::Baseline,
        DriverConfig::default(),
    );
    let engine = RecoveryEngine::new(
        Box::new(var),
        RecoveryConfig::for_model(&model),
        model.clamp(&test.commands[0]),
    );
    let foreco = run_closed_loop(
        &model,
        &test.commands,
        &fates,
        RecoveryMode::FoReCo(engine),
        DriverConfig::default(),
    );

    eprintln!("misses: {}", baseline.misses);
    eprintln!("no forecast RMSE: {:.2} mm", baseline.rmse_mm);
    eprintln!("FoReCo RMSE:      {:.2} mm", foreco.rmse_mm);

    // TSV trajectory (stdout): the three curves of Fig. 9.
    println!("# time_s\tdefined_mm\tno_forecast_mm\tforeco_mm\tmiss");
    let defined = metrics::distance_series(&baseline.defined);
    let base = metrics::distance_series(&baseline.executed);
    let fore = metrics::distance_series(&foreco.executed);
    for i in 0..defined.len() {
        println!(
            "{:.3}\t{:.2}\t{:.2}\t{:.2}\t{}",
            (i as f64 + 1.0) * 0.02,
            defined[i],
            base[i],
            fore[i],
            u8::from(!fates[i].on_time()),
        );
    }
}
