//! Real remote operators over real sockets: the deployment shape of the
//! paper's Fig. 1, end to end in one process.
//!
//! A `foreco-net` gateway (UDP data plane + TCP control plane) fronts a
//! sharded service whose sessions run FoReCo around one shared trained
//! VAR. Two operators connect through the typed [`ForecoClient`] SDK
//! and replay teleop traces at the paper's 50 Hz — one over a clean
//! wire, one through artificial loss and reordering — while a third
//! connection watches the whole fleet: a push-mode [`EventStream`]
//! narrates every open/park/complete as it happens, and a final
//! Prometheus scrape shows the same run as counters. The run ends with
//! both views of the damage: what the wire did (ingress counters) and
//! what the engine did about it (forecasts, §VII-C late patches,
//! task-space error).
//!
//! Run with `cargo run --release --example net_teleop`.

use foreco::net::{ClientConfig, EventStream, ForecoClient, Gateway, GatewayConfig, IngressConfig};
use foreco::prelude::*;
use foreco::serve::IngressSummary;
use std::time::Duration;

fn main() {
    // One trained forecaster serves every session (the edge-cloud split:
    // the model lives server-side, operators only stream commands).
    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let mut recovery = RecoveryConfig::for_model(&model);
    recovery.use_late_commands = true; // §VII-C: late datagrams patch history

    let gateway = Gateway::spawn(
        ServiceConfig::with_shards(2),
        GatewayConfig {
            recovery: RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(var),
                config: recovery,
            },
            ingress: IngressConfig {
                reorder_window: 3,
                ..IngressConfig::default()
            },
            ..GatewayConfig::default()
        },
    )
    .expect("spawn gateway");
    println!(
        "gateway up: data plane udp://{}  control plane tcp://{}\n",
        gateway.udp_addr(),
        gateway.tcp_addr()
    );

    // A fleet watcher on its own TCP connection: the gateway pushes
    // every lifecycle event; nothing here can change an output bit.
    let (mut events, _subscription) =
        EventStream::connect(gateway.tcp_addr()).expect("event stream");

    let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 42)
        .head(250)
        .commands;

    // Operator 1: clean wire. Operator 2: 5% loss, 6% late datagrams.
    let operators = [
        ("clean wire", ClientConfig::default()),
        (
            "lossy wire",
            ClientConfig {
                loss: 0.05,
                late: 0.06,
                late_depth: 4,
                seed: 99,
                ..ClientConfig::default()
            },
        ),
    ];
    let mut registry = MetricsRegistry::new();
    let mut ingress_rows: Vec<IngressSummary> = Vec::new();
    for (id, (label, mut cfg)) in operators.into_iter().enumerate() {
        // The paper's 50 Hz command period, held by the operator.
        cfg.pace = Some(Duration::from_millis(20));
        let mut operator = ForecoClient::connect(id as u64, gateway.udp_addr(), gateway.tcp_addr())
            .expect("connect operator");
        operator.open(trace[0].clone(), 64).expect("attach");
        let stats = operator.replay(&trace, 0, &cfg).expect("replay");
        let (report, ingress) = operator.close().expect("detach");
        println!(
            "operator {id} ({label}): sent {} frames ({} lost, {} deferred on purpose)",
            stats.sent, stats.lost, stats.deferred
        );
        println!(
            "  wire   : delivered {} · lost {} · late {} · reordered {} · dup {}",
            ingress.delivered, ingress.lost, ingress.late, ingress.reordered, ingress.duplicates
        );
        let engine = report.stats.as_ref().expect("FoReCo stats");
        println!(
            "  engine : {} ticks · {} misses · {} forecasts · {} late patches",
            report.ticks, report.misses, engine.forecasts, engine.late_patches
        );
        println!(
            "  error  : rmse {:.3} mm · worst {:.3} mm\n",
            report.rmse_mm, report.max_deviation_mm
        );
        registry.record(report);
        ingress_rows.push(ingress);
    }
    registry.record_ingress(ingress_rows);
    let summary = registry.summary().expect("sessions completed");
    println!(
        "fleet: {} sessions · {} ticks · {} misses covered · rmse p50 {:.3} mm",
        summary.sessions, summary.total_ticks, summary.total_misses, summary.rmse_mm.p50
    );

    // What the watcher saw, pushed over TCP while the operators ran.
    let (mut opened, mut parked, mut completed) = (0u64, 0u64, 0u64);
    while completed < 2 {
        match events.next(Duration::from_millis(500)).expect("event") {
            Some(FleetEvent::Opened { .. }) => opened += 1,
            Some(FleetEvent::Parked { .. }) => parked += 1,
            Some(FleetEvent::Completed { .. }) => completed += 1,
            Some(_) => {}
            None => break,
        }
    }
    println!("\nwatcher: {opened} opens · {parked} parks · {completed} completions pushed live");

    // The same fleet as Prometheus counters, scraped off the control
    // plane (any connection can ask; this one rides the loopback).
    let metrics = ForecoClient::loopback(&gateway, 99)
        .metrics()
        .expect("scrape metrics");
    let highlights = [
        "foreco_ticks_total",
        "foreco_ingress_",
        "foreco_session_rmse_mm",
    ];
    println!("scrape highlights:");
    for line in metrics.lines() {
        if !line.starts_with('#') && highlights.iter().any(|p| line.starts_with(p)) {
            println!("  {line}");
        }
    }
    gateway.shutdown();
}
