//! Real remote operators over real sockets: the deployment shape of the
//! paper's Fig. 1, end to end in one process.
//!
//! A `foreco-net` gateway (UDP data plane + TCP control plane) fronts a
//! sharded service whose sessions run FoReCo around one shared trained
//! VAR. Two operators connect over localhost sockets and replay teleop
//! traces at the paper's 50 Hz — one over a clean wire, one through
//! artificial loss and reordering — and the run ends with both views of
//! the damage: what the wire did (ingress counters) and what the engine
//! did about it (forecasts, §VII-C late patches, task-space error).
//!
//! Run with `cargo run --release --example net_teleop`.

use foreco::net::{ClientConfig, Gateway, GatewayConfig, IngressConfig, NetClient};
use foreco::prelude::*;
use foreco::serve::IngressSummary;
use std::time::Duration;

fn main() {
    // One trained forecaster serves every session (the edge-cloud split:
    // the model lives server-side, operators only stream commands).
    let model = niryo_one();
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let mut recovery = RecoveryConfig::for_model(&model);
    recovery.use_late_commands = true; // §VII-C: late datagrams patch history

    let gateway = Gateway::spawn(
        ServiceConfig::with_shards(2),
        GatewayConfig {
            recovery: RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(var),
                config: recovery,
            },
            ingress: IngressConfig {
                reorder_window: 3,
                ..IngressConfig::default()
            },
            ..GatewayConfig::default()
        },
    )
    .expect("spawn gateway");
    println!(
        "gateway up: data plane udp://{}  control plane tcp://{}\n",
        gateway.udp_addr(),
        gateway.tcp_addr()
    );

    let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 42)
        .head(250)
        .commands;

    // Operator 1: clean wire. Operator 2: 5% loss, 6% late datagrams.
    let operators = [
        ("clean wire", ClientConfig::default()),
        (
            "lossy wire",
            ClientConfig {
                loss: 0.05,
                late: 0.06,
                late_depth: 4,
                seed: 99,
                ..ClientConfig::default()
            },
        ),
    ];
    let mut registry = MetricsRegistry::new();
    let mut ingress_rows: Vec<IngressSummary> = Vec::new();
    for (id, (label, mut cfg)) in operators.into_iter().enumerate() {
        // The paper's 50 Hz command period, held by the operator.
        cfg.pace = Some(Duration::from_millis(20));
        let data = foreco::net::UdpWire::connect(gateway.udp_addr()).expect("udp connect");
        let control = foreco::net::TcpControl::connect(gateway.tcp_addr()).expect("tcp connect");
        let mut operator = NetClient::new(id as u64, data, control);
        operator.open(trace[0].clone(), 64).expect("attach");
        let stats = operator.replay(&trace, 0, &cfg).expect("replay");
        let (report, ingress) = operator.close().expect("detach");
        println!(
            "operator {id} ({label}): sent {} frames ({} lost, {} deferred on purpose)",
            stats.sent, stats.lost, stats.deferred
        );
        println!(
            "  wire   : delivered {} · lost {} · late {} · reordered {} · dup {}",
            ingress.delivered, ingress.lost, ingress.late, ingress.reordered, ingress.duplicates
        );
        let engine = report.stats.as_ref().expect("FoReCo stats");
        println!(
            "  engine : {} ticks · {} misses · {} forecasts · {} late patches",
            report.ticks, report.misses, engine.forecasts, engine.late_patches
        );
        println!(
            "  error  : rmse {:.3} mm · worst {:.3} mm\n",
            report.rmse_mm, report.max_deviation_mm
        );
        registry.record(report);
        ingress_rows.push(ingress);
    }
    registry.record_ingress(ingress_rows);
    let summary = registry.summary().expect("sessions completed");
    println!(
        "fleet: {} sessions · {} ticks · {} misses covered · rmse p50 {:.3} mm",
        summary.sessions, summary.total_ticks, summary.total_misses, summary.rmse_mm.p50
    );
    gateway.shutdown();
}
