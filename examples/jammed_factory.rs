//! A factory floor under a WiFi jammer — the paper's §VI-D-2 experiment.
//!
//! Robots share a 2.4 GHz 802.11 channel with an on/off interferer; the
//! example prints the analytical link diagnosis and the trajectory error
//! with and without FoReCo. Fault-injection knobs (smoltcp-style):
//!
//! ```sh
//! cargo run --release --example jammed_factory -- \
//!     --robots 15 --prob 0.025 --duration 50 --seconds 30 --seed 7
//! ```

use foreco::prelude::*;

struct Args {
    robots: usize,
    prob: f64,
    duration: u32,
    seconds: f64,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        robots: 15,
        prob: 0.025,
        duration: 50,
        seconds: 30.0,
        seed: 7,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--robots" => args.robots = value.parse().expect("--robots: integer"),
            "--prob" => args.prob = value.parse().expect("--prob: float in [0,1]"),
            "--duration" => args.duration = value.parse().expect("--duration: slots"),
            "--seconds" => args.seconds = value.parse().expect("--seconds: float"),
            "--seed" => args.seed = value.parse().expect("--seed: integer"),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "== jammed factory: {} robots, p_if = {:.1} %, T_if = {} slots ==\n",
        args.robots,
        args.prob * 100.0,
        args.duration
    );

    // Diagnose the wireless link analytically before simulating.
    let interference = if args.prob > 0.0 {
        Interference::new(args.prob, args.duration)
    } else {
        Interference::none()
    };
    let link_cfg = LinkConfig {
        stations: args.robots,
        interference,
        ..LinkConfig::default()
    };
    let solution = DcfModel {
        params: link_cfg.params,
        stations: args.robots,
        interference,
        offered_interval: Some(link_cfg.period),
    }
    .solve();
    println!("802.11 DCF analysis:");
    println!("  attempt failure probability p  = {:.4}", solution.p);
    println!(
        "  RTX-limit loss probability     = {:.2e}",
        solution.loss_probability
    );
    println!(
        "  mean delay (delivered)         = {:.2} ms",
        solution.mean_delay_delivered * 1e3
    );
    println!(
        "  mean channel occupancy / frame = {:.2} ms (budget Ω = 20 ms)",
        solution.mean_occupancy * 1e3
    );
    println!(
        "  effective contenders           = {:.1}\n",
        solution.effective_contenders
    );

    // Train on the experienced operator, drive with the inexperienced one.
    let train = Dataset::record(Skill::Experienced, 5, 0.02, args.seed.wrapping_add(1));
    let var = Var::fit_differenced(&train, 5, 1e-6).expect("fit");
    let test = Dataset::record(Skill::Inexperienced, 2, 0.02, args.seed.wrapping_add(2));
    let n = ((args.seconds / 0.02) as usize).min(test.commands.len());
    let commands = &test.commands[..n];
    let model = niryo_one();

    let mut channel = JammedChannel::new(link_cfg, 0.0, args.seed);
    let fates = channel.fates(commands.len());
    let misses = fates.iter().filter(|f| !f.on_time()).count();
    println!(
        "simulated {:.0} s of teleoperation: {} / {} commands missed their deadline\n",
        args.seconds,
        misses,
        commands.len()
    );

    let baseline = run_closed_loop(
        &model,
        commands,
        &fates,
        RecoveryMode::Baseline,
        DriverConfig::default(),
    );
    let engine = RecoveryEngine::new(
        Box::new(var),
        RecoveryConfig::for_model(&model),
        model.clamp(&commands[0]),
    );
    let foreco = run_closed_loop(
        &model,
        commands,
        &fates,
        RecoveryMode::FoReCo(engine),
        DriverConfig::default(),
    );

    println!(
        "  no forecasting : RMSE {:7.2} mm (worst {:7.2} mm)",
        baseline.rmse_mm, baseline.max_deviation_mm
    );
    println!(
        "  FoReCo         : RMSE {:7.2} mm (worst {:7.2} mm)",
        foreco.rmse_mm, foreco.max_deviation_mm
    );
    if foreco.rmse_mm > 0.0 {
        println!(
            "  improvement    : x{:.2}",
            baseline.rmse_mm / foreco.rmse_mm
        );
    }
}
